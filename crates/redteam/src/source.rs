//! The adversarial frontend: compiles slot-indexed attack patterns into
//! paced physical-address request streams.

use mint_attacks::AccessPattern;
use mint_dram::RowId;
use mint_memsys::backend::max_act_per_trefi;
use mint_memsys::{AddressDecoder, AddressMapping, Request, RequestSource, SystemConfig};
use std::collections::VecDeque;

/// A [`RequestSource`] that mounts an [`AccessPattern`] on the
/// command-level channel.
///
/// The pattern speaks slot space — "activate row *r* in slot *s* of tREFI
/// *k*" — so the source translates twice:
///
/// * **Space**: rows become physical byte addresses in one chosen flat
///   bank via the decoder's bijective encode path (the column rotates per
///   request so the stream looks like real traffic without ever changing
///   the attacked row).
/// * **Time**: slot `s` of tREFI `k` is scheduled at the absolute instant
///   `k·tREFI + tRFC + s·(tREFI − tRFC)/MaxACT`, i.e. inside the
///   activation window the REF leaves open. The source overrides
///   [`RequestSource::next_request_at`], so the runner issues each request
///   at its absolute slot time (memory stalls delay but never *advance*
///   an activation) — the bank sees at most MaxACT attack activations per
///   tREFI, exactly the envelope the security analysis assumes.
///
/// Idle pattern slots (`next_act` → `None`) consume slot time without a
/// request, so low-rate patterns (pattern-1's single ACT per tREFI) pace
/// correctly.
///
/// Being an ordinary request source, it composes with benign
/// [`CoreStream`](mint_memsys::CoreStream)/
/// [`TraceSource`](mint_memsys::TraceSource) cores in the same run —
/// attacker on core 0, victims elsewhere.
pub struct AttackSource {
    pattern: Box<dyn AccessPattern>,
    name: &'static str,
    decoder: AddressDecoder,
    bank: u32,
    rows: u32,
    columns: u32,
    max_act: u32,
    t_refi_ps: u64,
    slot0_ps: u64,
    slot_gap_ps: u64,
    refi_limit: u64,
    refi: u64,
    slot: u32,
    issued: u64,
    /// Pseudo-clock for the relative [`next_request`] fallback path.
    fallback_clock_ps: u64,
}

impl AttackSource {
    /// Mounts `pattern` on system-global bank `bank` of `cfg` (any
    /// channel/rank of the topology; the decoder's bijective
    /// `encode_bank_row` places the traffic) for `refi_limit` refresh
    /// intervals, encoding addresses with `mapping`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is beyond the topology's total bank count or
    /// `refi_limit == 0`.
    #[must_use]
    pub fn new(
        cfg: &SystemConfig,
        mapping: AddressMapping,
        bank: u32,
        pattern: Box<dyn AccessPattern>,
        name: &'static str,
        refi_limit: u64,
    ) -> Self {
        assert!(bank < cfg.total_banks(), "bank {bank} out of range");
        assert!(refi_limit > 0, "need at least one tREFI to attack");
        let max_act = u32::try_from(max_act_per_trefi()).expect("MaxACT fits u32");
        Self {
            pattern,
            name,
            decoder: AddressDecoder::new(cfg, mapping),
            bank,
            rows: cfg.rows_per_bank,
            columns: cfg.columns_per_row,
            max_act,
            t_refi_ps: cfg.t_refi_ps,
            slot0_ps: cfg.t_rfc_ps,
            slot_gap_ps: (cfg.t_refi_ps - cfg.t_rfc_ps) / u64::from(max_act),
            refi_limit,
            refi: 0,
            slot: 0,
            issued: 0,
            fallback_clock_ps: 0,
        }
    }

    /// The pattern's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The attacked system-global bank.
    #[must_use]
    pub fn target_bank(&self) -> u32 {
        self.bank
    }

    /// The victim rows the mounted pattern is driving towards the
    /// threshold (delegates to the pattern).
    #[must_use]
    pub fn target_victims(&self) -> Vec<RowId> {
        self.pattern.target_victims()
    }

    /// Requests handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The absolute intended issue time of `(refi, slot)`.
    fn slot_time_ps(&self, refi: u64, slot: u32) -> u64 {
        refi * self.t_refi_ps + self.slot0_ps + u64::from(slot) * self.slot_gap_ps
    }

    /// Advances the slot cursor to the next non-idle slot and builds its
    /// request with `ready_at_ps` as the think-time reference.
    fn advance(&mut self, ready_at_ps: u64) -> Option<Request> {
        while self.refi < self.refi_limit {
            let (refi, slot) = (self.refi, self.slot);
            self.slot += 1;
            if self.slot == self.max_act {
                self.slot = 0;
                self.refi += 1;
            }
            let Some(row) = self.pattern.next_act(refi, slot) else {
                continue; // idle slot: time passes, no request
            };
            assert!(
                row.0 < self.rows,
                "pattern row {row} outside the {}-row bank",
                self.rows
            );
            let column = (self.issued % u64::from(self.columns)) as u32;
            let addr = self.decoder.encode_bank_row(self.bank, row.0, column);
            let intended = self.slot_time_ps(refi, slot);
            self.issued += 1;
            return Some(Request {
                addr,
                is_read: true,
                think_time_ps: intended.saturating_sub(ready_at_ps),
            });
        }
        None
    }
}

impl RequestSource for AttackSource {
    /// Relative fallback for drivers that do not pass the ready hint:
    /// gaps are measured between intended slot times, so pacing is right
    /// on average but drifts late by the absorbed memory stalls.
    fn next_request(&mut self) -> Option<Request> {
        let reference = self.fallback_clock_ps;
        let req = self.advance(reference)?;
        self.fallback_clock_ps = reference + req.think_time_ps;
        Some(req)
    }

    /// Absolute pacing: the request is issued at its slot time whenever
    /// the core is ready by then (stalls can delay, never advance).
    fn next_request_at(&mut self, ready_at_ps: u64) -> Option<Request> {
        self.advance(ready_at_ps)
    }

    /// One request per refill, never a batch: every `think_time_ps` is
    /// `intended_slot - ready_at`, so a request generated against a stale
    /// ready time would land on the wrong tREFI slot. Pulling exactly one
    /// with the genuine `ready_at_ps` keeps the attack schedule exact
    /// under the Session's batched-generation path.
    fn refill(&mut self, ready_at_ps: u64, _max: usize, out: &mut VecDeque<Request>) {
        if let Some(req) = self.advance(ready_at_ps) {
            out.push_back(req);
        }
    }
}

impl std::fmt::Debug for AttackSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AttackSource({} on bank {}, {}/{} tREFI)",
            self.name, self.bank, self.refi, self.refi_limit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_attacks::{Pattern1, Pattern2};

    fn source(pattern: Box<dyn AccessPattern>, refis: u64) -> AttackSource {
        AttackSource::new(
            &SystemConfig::table6(),
            AddressMapping::default(),
            5,
            pattern,
            "test",
            refis,
        )
    }

    #[test]
    fn pattern1_issues_one_request_per_trefi_at_slot_time() {
        let cfg = SystemConfig::table6();
        let mut s = source(Box::new(Pattern1::new(RowId(4000))), 8);
        let d = AddressDecoder::new(&cfg, AddressMapping::default());
        for k in 0..8u64 {
            let r = s.next_request_at(0).expect("one per tREFI");
            assert_eq!(
                r.think_time_ps,
                k * cfg.t_refi_ps + cfg.t_rfc_ps,
                "slot 0 of tREFI {k} lands right after the REF window"
            );
            let a = d.decode(r.addr);
            assert_eq!(a.flat_bank(cfg.banks_per_group()), 5);
            assert_eq!(a.row, 4000);
        }
        assert_eq!(s.next_request_at(0), None, "refi limit reached");
        assert_eq!(s.issued(), 8);
    }

    #[test]
    fn ready_hint_subtracts_elapsed_time() {
        let cfg = SystemConfig::table6();
        let mut s = source(Box::new(Pattern1::new(RowId(4000))), 4);
        let _ = s.next_request_at(0).unwrap();
        // Core became ready *after* the next intended slot: issue now.
        let late = 2 * cfg.t_refi_ps;
        let r = s.next_request_at(late).unwrap();
        assert_eq!(r.think_time_ps, 0, "past slots issue immediately");
        // Core ready early: wait out the remaining gap exactly.
        let r = s.next_request_at(cfg.t_refi_ps).unwrap();
        assert_eq!(r.think_time_ps, cfg.t_refi_ps + cfg.t_rfc_ps);
    }

    #[test]
    fn full_window_pattern_spaces_slots_inside_the_act_window() {
        let cfg = SystemConfig::table6();
        let mut s = source(Box::new(Pattern2::new(RowId(4000), 73, 73)), 2);
        let mut times = Vec::new();
        while let Some(r) = s.next_request_at(0) {
            times.push(r.think_time_ps);
        }
        assert_eq!(times.len(), 2 * 73, "73 ACTs per tREFI for two tREFI");
        for w in times.windows(2) {
            assert!(w[1] > w[0], "slot times strictly increase");
        }
        // Every intended time of tREFI k sits inside (k·tREFI + tRFC,
        // (k+1)·tREFI): never inside a REF window.
        for (i, &t) in times.iter().enumerate() {
            let k = (i / 73) as u64;
            assert!(t >= k * cfg.t_refi_ps + cfg.t_rfc_ps);
            assert!(t < (k + 1) * cfg.t_refi_ps);
        }
    }

    #[test]
    fn fallback_pacing_matches_absolute_intent_without_stalls() {
        let mut a = source(Box::new(Pattern2::new(RowId(4000), 10, 73)), 3);
        let mut b = source(Box::new(Pattern2::new(RowId(4000), 10, 73)), 3);
        let mut clock = 0u64;
        while let (Some(ra), Some(rb)) = (a.next_request(), b.next_request_at(clock)) {
            clock += rb.think_time_ps;
            assert_eq!(ra.addr, rb.addr);
            // With a stall-free core both paths issue at the slot time.
            assert_eq!(a.fallback_clock_ps, clock);
        }
    }

    #[test]
    fn attacks_mount_on_any_channel_and_rank() {
        // Regression: the range assert used to read `cfg.banks`, limiting
        // attacks to rank 0 of channel 0.
        let cfg = SystemConfig {
            channels: 2,
            ranks: 2,
            ..SystemConfig::table6()
        };
        let bank = cfg.banks_per_channel() + cfg.banks + 5; // channel 1, rank 1
        let mut s = AttackSource::new(
            &cfg,
            AddressMapping::default(),
            bank,
            Box::new(Pattern1::new(RowId(4000))),
            "far-bank",
            2,
        );
        let d = AddressDecoder::new(&cfg, AddressMapping::default());
        let r = s.next_request_at(0).unwrap();
        let a = d.decode(r.addr);
        assert_eq!(a.channel, 1);
        assert_eq!(a.rank, 1);
        assert_eq!(a.flat_bank(cfg.banks_per_group()), 5);
        assert_eq!(a.row, 4000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bank_rejected() {
        let _ = AttackSource::new(
            &SystemConfig::table6(),
            AddressMapping::default(),
            99,
            Box::new(Pattern1::new(RowId(1))),
            "bad",
            1,
        );
    }
}
