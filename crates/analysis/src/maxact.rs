//! Fig 18 (Appendix A): sensitivity of MinTRH-D to MaxACT.

use crate::mttf::MinTrhSolver;
use crate::{para, patterns};

/// One point of the Fig 18 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxActPoint {
    /// Activation slots per tREFI.
    pub max_act: u32,
    /// MINT's MinTRH-D (pattern-2 at `k = MaxACT`, transitive span).
    pub mint_d: u32,
    /// InDRAM-PARA's MinTRH-D (worst-position-synchronised attack).
    pub para_d: u32,
}

/// One point of the Fig 18 sweep, at MaxACT `m`.
///
/// # Panics
///
/// Panics if `m < 2`.
#[must_use]
pub fn fig18_point(solver: &MinTrhSolver, m: u32) -> MaxActPoint {
    assert!(m >= 2, "MaxACT must be at least 2");
    MaxActPoint {
        max_act: m,
        mint_d: patterns::pattern2_min_trh(solver, m, m, m + 1) / 2,
        para_d: para::min_trh(solver, m) / 2,
    }
}

/// Sweeps MaxACT over `lo..=hi` (the paper plots 65..=80; the viable DDR5
/// range is ≈67..78).
#[must_use]
pub fn fig18_series(solver: &MinTrhSolver, lo: u32, hi: u32) -> Vec<MaxActPoint> {
    assert!(lo >= 2 && lo <= hi, "invalid MaxACT range");
    (lo..=hi).map(|m| fig18_point(solver, m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf::TargetMttf;

    fn series() -> Vec<MaxActPoint> {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        fig18_series(&solver, 65, 80)
    }

    #[test]
    fn min_trh_grows_with_max_act() {
        let s = series();
        assert!(s.first().unwrap().mint_d < s.last().unwrap().mint_d);
        assert!(s.first().unwrap().para_d < s.last().unwrap().para_d);
    }

    #[test]
    fn para_penalty_stable_across_range() {
        // Appendix A: the MINT advantage stays ≈2.7x across the whole range.
        for p in series() {
            let ratio = f64::from(p.para_d) / f64::from(p.mint_d);
            assert!(
                (1.8..3.2).contains(&ratio),
                "MaxACT {}: ratio {ratio}",
                p.max_act
            );
        }
    }

    #[test]
    fn default_point_matches_other_modules() {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let s = fig18_series(&solver, 73, 73);
        assert!((1350..1460).contains(&s[0].mint_d), "{}", s[0].mint_d);
    }

    #[test]
    #[should_panic(expected = "invalid MaxACT range")]
    fn bad_range_rejected() {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let _ = fig18_series(&solver, 1, 0);
    }
}
