//! A small aligned-text / TSV table writer used by every regeneration
//! binary (we deliberately avoid serde/JSON — see DESIGN.md §3).

use std::fmt::Write as _;

/// A simple table builder producing aligned plain text and TSV.
///
/// # Examples
///
/// ```
/// use mint_analysis::textable::TexTable;
///
/// let mut t = TexTable::new(vec!["Design", "MinTRH-D"]);
/// t.row(vec!["MINT".into(), "1400".into()]);
/// let text = t.to_text();
/// assert!(text.contains("MINT"));
/// assert!(t.to_tsv().starts_with("Design\tMinTRH-D"));
/// ```
#[derive(Debug, Clone)]
pub struct TexTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TexTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned plain text with a header rule.
    #[must_use]
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as tab-separated values (header line first).
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TexTable {
        let mut t = TexTable::new(vec!["a", "bb"]);
        t.row(vec!["xxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines equally wide (trailing spaces preserved except on
        // final column, which is padded too by write!).
        assert!(lines[0].starts_with("a  "));
        assert!(lines[2].starts_with("xxx"));
    }

    #[test]
    fn tsv_round_trip_fields() {
        let tsv = sample().to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(lines.next().unwrap().split('\t').count(), 2);
        assert_eq!(lines.next().unwrap(), "xxx\t1");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(TexTable::new(vec!["x"]).is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = TexTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = TexTable::new(Vec::<String>::new());
    }
}
