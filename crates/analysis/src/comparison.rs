//! The Table III tracker comparison.

use crate::mttf::MinTrhSolver;
use crate::{feint, mithril_bound, para, patterns};

/// Tracker taxonomy (paper Fig 1b): what information drives the selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerCentricity {
    /// Selection from accumulated history (counters).
    Past,
    /// Selection from the currently activated row only.
    Present,
    /// Selection decided before the interval begins (MINT).
    Future,
}

impl TrackerCentricity {
    /// The label used in Table III.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TrackerCentricity::Past => "Past",
            TrackerCentricity::Present => "Current",
            TrackerCentricity::Future => "Future",
        }
    }
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Design name.
    pub design: &'static str,
    /// Taxonomy type.
    pub centricity: TrackerCentricity,
    /// Tolerated double-sided threshold (per-row).
    pub min_trh_d: u32,
    /// Tracking entries per bank.
    pub entries: u64,
    /// Whether transitive (Half-Double) attacks are the binding constraint.
    pub transitive_vulnerable: bool,
}

/// Silent victim refreshes a single-sided attack can aim at a
/// victim-of-victim per tREFW: one per REF (§V-E), so the transitive
/// MinTRH-D is `8192 / 2 = 4096` for designs that cannot see them.
#[must_use]
pub fn transitive_min_trh_d(refis_per_refw: u32) -> u32 {
    refis_per_refw / 2
}

/// The transitive channel of InDRAM-PARA is throttled by its non-selection:
/// a fully-hammered window still mitigates only `1 − (1−p)^M` of the time
/// (§III-D), so the victim-of-victim receives proportionally fewer silent
/// refreshes — which is why the paper classifies InDRAM-PARA as immune
/// (its *direct* threshold is the binding one, §V-G).
#[must_use]
pub fn para_transitive_min_trh_d(refis_per_refw: u32, m: u32) -> u32 {
    let p = 1.0 / f64::from(m);
    let select_rate = 1.0 - (1.0 - p).powi(m as i32);
    (f64::from(refis_per_refw) * select_rate / 2.0).round() as u32
}

/// Computes every row of Table III from the models in this crate.
#[must_use]
pub fn table3(solver: &MinTrhSolver) -> Vec<ComparisonRow> {
    let max_act = 73;
    let transitive_d = transitive_min_trh_d(8192);

    // PRCT: the idealized floor, from the exact feinting simulation.
    let prct_d = feint::prct_min_trh_d();

    // Mithril at the paper's 677-entry configuration.
    let mithril_d = mithril_bound::min_trh_d(677);

    // PARFM: its direct-attack threshold matches MINT's pattern-2 bound
    // (same 1/M selection probability), but it cannot see victim refreshes,
    // so the transitive attack binds.
    let parfm_direct = patterns::pattern2_min_trh(solver, max_act, max_act, max_act) / 2;
    let parfm_d = parfm_direct.max(transitive_d);

    // InDRAM-PARA: its throttled transitive channel stays below its direct
    // threshold, so direct attacks bind and the design counts as immune.
    let para_direct = para::min_trh(solver, max_act) / 2;
    let para_transitive = para_transitive_min_trh_d(8192, max_act);
    let para_vulnerable = para_transitive > para_direct;
    let para_d = para_direct.max(para_transitive);

    // MINT with the transitive slot: span = 74.
    let mint_d = patterns::pattern2_min_trh(solver, max_act, max_act, max_act + 1) / 2;

    vec![
        ComparisonRow {
            design: "PRCT",
            centricity: TrackerCentricity::Past,
            min_trh_d: prct_d,
            entries: 128 * 1024,
            transitive_vulnerable: false,
        },
        ComparisonRow {
            design: "Mithril",
            centricity: TrackerCentricity::Past,
            min_trh_d: mithril_d,
            entries: 677,
            transitive_vulnerable: false,
        },
        ComparisonRow {
            design: "PARFM",
            centricity: TrackerCentricity::Past,
            min_trh_d: parfm_d,
            entries: 73,
            transitive_vulnerable: true,
        },
        ComparisonRow {
            design: "InDRAM-PARA",
            centricity: TrackerCentricity::Present,
            min_trh_d: para_d,
            entries: 1,
            transitive_vulnerable: para_vulnerable,
        },
        ComparisonRow {
            design: "MINT",
            centricity: TrackerCentricity::Future,
            min_trh_d: mint_d,
            entries: 1,
            transitive_vulnerable: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf::TargetMttf;

    fn rows() -> Vec<ComparisonRow> {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        table3(&solver)
    }

    #[test]
    fn table3_ordering_matches_paper() {
        let rows = rows();
        let get = |name: &str| rows.iter().find(|r| r.design == name).unwrap().min_trh_d;
        // PRCT < Mithril ≈ MINT < InDRAM-PARA < PARFM.
        assert!(get("PRCT") < get("MINT"));
        let mithril = get("Mithril") as f64;
        let mint = get("MINT") as f64;
        assert!(
            (mithril - mint).abs() / mint < 0.1,
            "MINT ≈ 677-entry Mithril: {mint} vs {mithril}"
        );
        assert!(get("InDRAM-PARA") > get("MINT"));
        assert!(get("PARFM") >= get("InDRAM-PARA") || get("PARFM") == 4096);
    }

    #[test]
    fn paper_anchor_values() {
        let rows = rows();
        let get = |name: &str| rows.iter().find(|r| r.design == name).unwrap().min_trh_d;
        assert!((600..660).contains(&get("PRCT")), "PRCT {}", get("PRCT"));
        assert!((1350..1460).contains(&get("MINT")), "MINT {}", get("MINT"));
        assert_eq!(get("PARFM"), 4096);
    }

    #[test]
    fn mint_within_2_25x_of_prct() {
        let rows = rows();
        let get = |name: &str| rows.iter().find(|r| r.design == name).unwrap().min_trh_d;
        let ratio = f64::from(get("MINT")) / f64::from(get("PRCT"));
        assert!((1.8..2.5).contains(&ratio), "ratio {ratio} (paper: 2.25x)");
    }

    #[test]
    fn transitive_flags() {
        let rows = rows();
        let vuln = |name: &str| {
            rows.iter()
                .find(|r| r.design == name)
                .unwrap()
                .transitive_vulnerable
        };
        assert!(!vuln("PRCT"));
        assert!(!vuln("Mithril"));
        assert!(vuln("PARFM"));
        assert!(!vuln("InDRAM-PARA"), "throttled transitive channel (§V-G)");
        assert!(!vuln("MINT"));
    }

    #[test]
    fn single_entry_designs() {
        let rows = rows();
        let entries = |name: &str| rows.iter().find(|r| r.design == name).unwrap().entries;
        assert_eq!(entries("MINT"), 1);
        assert_eq!(entries("InDRAM-PARA"), 1);
        assert_eq!(entries("PRCT"), 128 * 1024);
    }

    #[test]
    fn centricity_labels() {
        assert_eq!(TrackerCentricity::Future.label(), "Future");
        assert_eq!(TrackerCentricity::Past.label(), "Past");
        assert_eq!(TrackerCentricity::Present.label(), "Current");
    }
}
