//! The entries-vs-threshold trade-off for Mithril (paper §II-G, Table III).
//!
//! The paper sizes Mithril with Theorem 1 of the original HPCA 2022 paper,
//! quoting two data points: 677 entries for MinTRH-D = 1400, and ~1400
//! entries for MinTRH-D = 1000. We model the relationship as the idealized
//! PRCT floor plus a finite-table penalty inversely proportional to the
//! entry count:
//!
//! ```text
//! MinTRH-D(m) = PRCT_D + C / m
//! ```
//!
//! The `1/m` shape is the theoretically expected penalty of a frequent-items
//! sketch (count error scales with `(activations tracked) / entries`); the
//! constant `C` is calibrated so that both of the paper's data points are
//! reproduced (C = 2¹⁹ fits both within 0.5%). EXPERIMENTS.md records this
//! as a calibrated — not re-derived — relationship; the `mint-sim` crate
//! additionally validates the *behavioural* Mithril implementation against
//! attack patterns.

use crate::feint;

/// Calibration constant (see module docs): `MinTRH-D = PRCT_D + C/m`.
pub const MITHRIL_PENALTY_C: f64 = 524_288.0; // 2^19

/// MinTRH-D tolerated by Mithril with `entries` counters per bank.
///
/// # Panics
///
/// Panics if `entries == 0`.
///
/// # Examples
///
/// ```
/// use mint_analysis::mithril_bound::min_trh_d;
/// let d = min_trh_d(677);
/// assert!((1350..1450).contains(&d)); // paper: 1400
/// ```
#[must_use]
pub fn min_trh_d(entries: u32) -> u32 {
    assert!(entries > 0, "Mithril needs at least one entry");
    let floor = feint::prct_min_trh_d() as f64;
    (floor + MITHRIL_PENALTY_C / f64::from(entries)).round() as u32
}

/// Entries Mithril needs to tolerate a double-sided threshold of `trh_d`.
///
/// Returns `None` if the request is below the idealized PRCT floor (no
/// number of entries suffices at this mitigation rate).
#[must_use]
pub fn entries_for(trh_d: u32) -> Option<u32> {
    let floor = feint::prct_min_trh_d();
    if trh_d <= floor {
        return None;
    }
    Some((MITHRIL_PENALTY_C / f64::from(trh_d - floor)).ceil() as u32)
}

/// MinTRH-D under maximum refresh postponement (§VI-A): counter trackers
/// pay the `4 × MaxACT` penalty split across the double-sided pair.
#[must_use]
pub fn min_trh_d_postponed(entries: u32, max_act: u32) -> u32 {
    min_trh_d(entries) + 2 * max_act
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_677_entries() {
        let d = min_trh_d(677);
        assert!((1350..1450).contains(&d), "{d}");
    }

    #[test]
    fn paper_anchor_1400_entries_for_1k() {
        // §II-G: "for a TRH-D of 1K, Mithril would require ~1400 entries".
        let m = entries_for(1000).unwrap();
        assert!((1250..1550).contains(&m), "{m}");
    }

    #[test]
    fn postponement_adds_146() {
        // Table IV: Mithril 1400 → 1546.
        let base = min_trh_d(677);
        assert_eq!(min_trh_d_postponed(677, 73), base + 146);
    }

    #[test]
    fn below_prct_floor_impossible() {
        assert_eq!(entries_for(100), None);
        assert_eq!(entries_for(feint::prct_min_trh_d()), None);
    }

    #[test]
    fn more_entries_lower_threshold() {
        assert!(min_trh_d(2000) < min_trh_d(677));
        assert!(min_trh_d(677) < min_trh_d(100));
    }

    #[test]
    fn round_trip() {
        let m = entries_for(1400).unwrap();
        let d = min_trh_d(m);
        assert!((d as i64 - 1400).abs() <= 15, "{d}");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = min_trh_d(0);
    }
}
