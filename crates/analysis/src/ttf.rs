//! Table VII: sensitivity of MinTRH-D to the target time-to-failure.

use crate::ada::AdaConfig;
use crate::mttf::{MinTrhSolver, TargetMttf};

/// One row of Table VII.
#[derive(Debug, Clone, PartialEq)]
pub struct TtfRow {
    /// Per-bank target MTTF in years.
    pub target_years: f64,
    /// Corresponding system-level MTTF in years (22 concurrent banks).
    pub system_years: f64,
    /// MinTRH-D of MINT (1×, DMQ, adaptive).
    pub mint: u32,
    /// MinTRH-D of MINT+RFM32.
    pub rfm32: u32,
    /// MinTRH-D of MINT+RFM16.
    pub rfm16: u32,
}

/// Computes Table VII for the paper's four targets (1K to 1M years).
#[must_use]
pub fn table7(t_refw_secs: f64) -> Vec<TtfRow> {
    [1e3, 1e4, 1e5, 1e6]
        .iter()
        .map(|&years| {
            let target = TargetMttf {
                years_per_bank: years,
            };
            let solver = MinTrhSolver::new(target, t_refw_secs);
            TtfRow {
                target_years: years,
                system_years: target.system_mttf_years(),
                mint: AdaConfig::mint_default().ada_min_trh_d(&solver),
                rfm32: AdaConfig::rfm(32).ada_min_trh_d(&solver),
                rfm16: AdaConfig::rfm(16).ada_min_trh_d(&solver),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_monotone_in_target() {
        let rows = table7(0.032);
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(
                pair[0].mint < pair[1].mint,
                "stricter target → higher MinTRH"
            );
            assert!(pair[0].rfm32 <= pair[1].rfm32);
            assert!(pair[0].rfm16 <= pair[1].rfm16);
        }
    }

    #[test]
    fn paper_anchors_10k_years() {
        let rows = table7(0.032);
        let r = &rows[1]; // 10K years
        assert!((1420..1540).contains(&r.mint), "{}", r.mint);
        assert!((620..740).contains(&r.rfm32), "{}", r.rfm32);
        assert!((310..390).contains(&r.rfm16), "{}", r.rfm16);
        assert!((r.system_years - 450.0).abs() < 10.0);
    }

    #[test]
    fn paper_anchors_1k_and_1m_years() {
        let rows = table7(0.032);
        // 1K years: 1.40K / 651 / 336; 1M years: 1.64K / 763 / 395.
        assert!((1330..1470).contains(&rows[0].mint), "{}", rows[0].mint);
        assert!((1560..1720).contains(&rows[3].mint), "{}", rows[3].mint);
        assert!((350..440).contains(&rows[3].rfm16), "{}", rows[3].rfm16);
    }

    #[test]
    fn decades_of_protection_even_at_low_band() {
        // §VIII-B: even the 1K-year target leaves 45 years of system MTTF.
        let rows = table7(0.032);
        assert!((rows[0].system_years - 45.45).abs() < 1.0);
    }
}
