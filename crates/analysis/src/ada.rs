//! Adaptive attacks on MINT+DMQ (paper Appendix B, Fig 21), generalised to
//! the RFM-boosted rates of Table V.
//!
//! # The model
//!
//! ADA runs pattern-2 until a *morphing point* MP, then floods rows one at
//! a time hoping to ride the DMQ: a flooded row gains up to
//! `(DMQ depth + 1) × window = 365` invisible activations before its queued
//! mitigation lands. The attack succeeds if some row's unmitigated count at
//! MP is at least `T − 365`.
//!
//! Under pattern-2 each row is hammered once per mitigation window and is
//! selected with probability `p = 1/span` per hammer, so its unmitigated
//! count is a geometric race: the probability that a row's count is at
//! least `x` at any time `t ≥ x` is exactly `(1 − p)^x` (its last `x`
//! hammers all escaped selection). This closed form is the stationary tail
//! of the paper's Markov chain (Fig 20) and is what makes the MP sweep
//! cheap to evaluate.
//!
//! The attack repeats every `MP + flood` windows; per tREFW it gets
//! `attempts = ⌊windows_per_refw / cycle⌋` tries, each covering all `k`
//! rows (flooded sequentially). The per-window failure probability is the
//! baseline pattern-2 probability plus the ADA term, and MinTRH falls out
//! of the usual binary search.

use crate::mttf::MinTrhSolver;
use crate::sw::SwModel;

/// Parameters of an ADA analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaConfig {
    /// Activations per mitigation window (73 for MINT; the RFM threshold
    /// for MINT+RFM; 146 for half-rate MINT).
    pub window_acts: u32,
    /// SAN selection span (`window_acts + 1` with the transitive slot).
    pub span: u32,
    /// DMQ depth (4).
    pub dmq_depth: u32,
    /// Demand activation slots per tREFW (598 016 for DDR5-5200B).
    pub acts_per_refw: u64,
}

impl AdaConfig {
    /// MINT at the default 1× rate with DMQ.
    #[must_use]
    pub fn mint_default() -> Self {
        Self {
            window_acts: 73,
            span: 74,
            dmq_depth: 4,
            acts_per_refw: 598_016,
        }
    }

    /// MINT at half rate (one mitigation per two tREFI, Table V row 1).
    #[must_use]
    pub fn half_rate() -> Self {
        Self {
            window_acts: 146,
            span: 147,
            ..Self::mint_default()
        }
    }

    /// MINT+RFM with the given RFM threshold (32 or 16 in Table V).
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th == 0`.
    #[must_use]
    pub fn rfm(rfm_th: u32) -> Self {
        assert!(rfm_th > 0, "RFM threshold must be non-zero");
        Self {
            window_acts: rfm_th,
            span: rfm_th + 1,
            ..Self::mint_default()
        }
    }

    /// Per-hammer selection probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        1.0 / f64::from(self.span)
    }

    /// Mitigation windows per tREFW.
    #[must_use]
    pub fn windows_per_refw(&self) -> u32 {
        (self.acts_per_refw / u64::from(self.window_acts)) as u32
    }

    /// Extra activations a flooded row can absorb while its selection waits
    /// in the DMQ: `(depth + 1) × window` (365 for the default).
    #[must_use]
    pub fn flood_acts(&self) -> u32 {
        (self.dmq_depth + 1) * self.window_acts
    }

    /// Attack rows in the pattern-2 phase (one per window slot).
    #[must_use]
    pub fn k_rows(&self) -> u32 {
        self.window_acts
    }

    /// tREFI spanned by one mitigation window (for auto-refresh accounting).
    #[must_use]
    pub fn refi_per_window(&self) -> f64 {
        8192.0 / f64::from(self.windows_per_refw())
    }

    /// The baseline pattern-2 model at victim threshold `t_total` acts.
    fn baseline_prob(&self, t_total: u32) -> f64 {
        let m = SwModel {
            p_mitigation: self.p(),
            threshold_events: t_total,
            events_per_refw: self.windows_per_refw(),
            refi_per_event: self.refi_per_window(),
            row_multiplier: f64::from(self.k_rows()),
        };
        m.failure_prob_refw()
    }

    /// Probability of an ADA success within one tREFW, at victim threshold
    /// `t_total` (total activations on the victim) and morphing point
    /// `mp_windows`, for the single- or double-sided variant.
    fn ada_prob(&self, t_total: u32, mp_windows: u32, double_sided: bool) -> f64 {
        let p = self.p();
        let flood = self.flood_acts();
        let needed = t_total.saturating_sub(flood);
        // Acts accumulate at 1 per window (single) or 2 per window (the
        // double-sided victim is hit by both flanking rows).
        let acts_per_window = if double_sided { 2 } else { 1 };
        let reachable = mp_windows.saturating_mul(acts_per_window);
        if needed > reachable {
            return 0.0; // cannot have accumulated enough by MP
        }
        // Geometric tail: last `needed` acts all escaped selection.
        let q_lower = ((1.0 - p).ln() * f64::from(needed)).exp();
        // Rows already at ≥ T are baseline failures, not ADA successes.
        let q_upper = if t_total <= reachable {
            ((1.0 - p).ln() * f64::from(t_total)).exp()
        } else {
            0.0
        };
        let q = (q_lower - q_upper).max(0.0);
        let units = if double_sided {
            self.k_rows() / 2 // victim pairs
        } else {
            self.k_rows()
        };
        // Flood phase: each unit flooded for (depth+1) windows, sequentially.
        let cycle = u64::from(mp_windows) + u64::from(units) * u64::from(self.dmq_depth + 1);
        let attempts = u64::from(self.windows_per_refw()) / cycle.max(1);
        (attempts as f64 * f64::from(units) * q).clamp(0.0, 1.0)
    }

    /// MinTRH (total victim activations) at a fixed morphing point.
    #[must_use]
    pub fn min_trh_at_mp(&self, solver: &MinTrhSolver, mp_windows: u32, double_sided: bool) -> u32 {
        let hi = self
            .windows_per_refw()
            .saturating_mul(if double_sided { 2 } else { 1 })
            .max(2);
        solver.min_threshold(1, hi, &|t| {
            self.baseline_prob(t) + self.ada_prob(t, mp_windows, double_sided)
        })
    }

    /// Worst-case (over the morphing point) MinTRH, returned as total victim
    /// activations together with the worst MP (in windows).
    #[must_use]
    pub fn worst_min_trh(&self, solver: &MinTrhSolver, double_sided: bool) -> (u32, u32) {
        let mut worst = (0u32, 0u32);
        let windows = self.windows_per_refw();
        // MP resolution: fine enough to catch the attempts-count steps.
        let step = (windows / 256).max(1);
        let mut mp = 1u32;
        while mp < windows {
            let t = self.min_trh_at_mp(solver, mp, double_sided);
            if t > worst.0 {
                worst = (t, mp);
            }
            mp += step;
        }
        worst
    }

    /// One Fig 21 point: `(MP, MinTRH-single, MinTRH-D-per-row)` at the
    /// morphing point `mp` (in windows = tREFI at the 1× rate).
    #[must_use]
    pub fn fig21_point(&self, solver: &MinTrhSolver, mp: u32) -> (u32, u32, u32) {
        let single = self.min_trh_at_mp(solver, mp, false);
        let double = self.min_trh_at_mp(solver, mp, true) / 2;
        (mp, single, double)
    }

    /// Fig 21 series: one [`fig21_point`](Self::fig21_point) per morphing
    /// point.
    #[must_use]
    pub fn fig21_series(&self, solver: &MinTrhSolver, mps: &[u32]) -> Vec<(u32, u32, u32)> {
        mps.iter().map(|&mp| self.fig21_point(solver, mp)).collect()
    }

    /// The non-adaptive MINT+DMQ MinTRH-D (Table IV's "1404"): the best
    /// static pattern stays pattern-2, whose per-row mitigation delay under
    /// a full DMQ is one activation per queued window.
    #[must_use]
    pub fn dmq_simple_min_trh_d(&self, solver: &MinTrhSolver) -> u32 {
        let base = solver.min_threshold(1, self.windows_per_refw().max(2), &|t| {
            self.baseline_prob(t)
        });
        base / 2 + self.dmq_depth
    }

    /// The headline MinTRH-D under adaptive attacks (per-row, Table IV/V).
    #[must_use]
    pub fn ada_min_trh_d(&self, solver: &MinTrhSolver) -> u32 {
        self.worst_min_trh(solver, true).0 / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf::TargetMttf;

    fn solver() -> MinTrhSolver {
        MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
    }

    #[test]
    fn ada_ineffective_before_t_minus_flood() {
        // Fig 21: for MP below ≈2400 the single-sided MinTRH stays at the
        // pattern-2 baseline (2763-ish for span 73... here span 74 → 2800).
        let cfg = AdaConfig::mint_default();
        let s = solver();
        let early = cfg.min_trh_at_mp(&s, 1000, false);
        let base = cfg.min_trh_at_mp(&s, 1, false);
        assert_eq!(early, base, "ADA with tiny MP must not beat pattern-2");
    }

    #[test]
    fn ada_peak_exceeds_baseline_single_sided() {
        // Fig 21: peak ≈ 2899 vs baseline ≈ 2763 (span-73 analysis). With
        // span 74 both shift slightly up; the *gap* is what we check.
        let cfg = AdaConfig::mint_default();
        let s = solver();
        let (worst, worst_mp) = cfg.worst_min_trh(&s, false);
        let base = cfg.min_trh_at_mp(&s, 1, false);
        assert!(worst > base + 50, "ADA should add ≥50: {worst} vs {base}");
        assert!(worst < base + 400, "ADA gain bounded: {worst} vs {base}");
        // The worst MP sits near T − flood.
        let expect_mp = worst.saturating_sub(cfg.flood_acts());
        let err = (i64::from(worst_mp) - i64::from(expect_mp)).abs();
        assert!(err < 600, "worst MP {worst_mp} should be near {expect_mp}");
    }

    #[test]
    fn paper_anchor_min_trh_d_1482() {
        let cfg = AdaConfig::mint_default();
        let d = cfg.ada_min_trh_d(&solver());
        assert!(
            (1420..1540).contains(&d),
            "MINT+DMQ adaptive MinTRH-D should be ≈1482, got {d}"
        );
    }

    #[test]
    fn paper_anchor_dmq_simple_1404() {
        let cfg = AdaConfig::mint_default();
        let d = cfg.dmq_simple_min_trh_d(&solver());
        assert!(
            (1370..1440).contains(&d),
            "MINT+DMQ simple MinTRH-D should be ≈1404, got {d}"
        );
    }

    #[test]
    fn paper_anchor_rfm32_689() {
        let d = AdaConfig::rfm(32).ada_min_trh_d(&solver());
        assert!(
            (620..740).contains(&d),
            "MINT+RFM32 MinTRH-D should be ≈689, got {d}"
        );
    }

    #[test]
    fn paper_anchor_rfm16_356() {
        let d = AdaConfig::rfm(16).ada_min_trh_d(&solver());
        assert!(
            (310..390).contains(&d),
            "MINT+RFM16 MinTRH-D should be ≈356, got {d}"
        );
    }

    #[test]
    fn paper_anchor_half_rate_2700() {
        let d = AdaConfig::half_rate().ada_min_trh_d(&solver());
        assert!(
            (2500..2950).contains(&d),
            "half-rate MINT MinTRH-D should be ≈2.70K, got {d}"
        );
    }

    #[test]
    fn fig21_series_has_plateau_then_hump() {
        let cfg = AdaConfig::mint_default();
        let s = solver();
        let series = cfg.fig21_series(&s, &[500, 1500, 2600, 3400, 5000, 7000]);
        let base = series[0].1;
        assert_eq!(series[1].1, base, "still on the plateau at MP 1500");
        assert!(series[2].1 > base, "hump after ≈2500");
        // Late MPs decay towards (but stay above) the baseline.
        assert!(series[5].1 >= base);
        assert!(series[5].1 <= series[2].1);
    }

    #[test]
    fn flood_acts_matches_paper() {
        assert_eq!(AdaConfig::mint_default().flood_acts(), 365);
        assert_eq!(AdaConfig::rfm(32).flood_acts(), 160);
        assert_eq!(AdaConfig::rfm(16).flood_acts(), 80);
    }

    #[test]
    fn windows_per_refw() {
        assert_eq!(AdaConfig::mint_default().windows_per_refw(), 8192);
        assert_eq!(AdaConfig::rfm(32).windows_per_refw(), 18_688);
        assert_eq!(AdaConfig::rfm(16).windows_per_refw(), 37_376);
    }
}
