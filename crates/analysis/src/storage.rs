//! Table IX: per-bank SRAM overhead of trackers.

/// One row of Table IX.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageRow {
    /// Tracker name.
    pub name: &'static str,
    /// SRAM bytes per bank at device TRH-D = 3K.
    pub bytes_at_3k: u64,
    /// SRAM bytes per bank at device TRH-D = 300.
    pub bytes_at_300: u64,
}

/// MINT + DMQ storage: CAN(7) + SAN(7) + SAR(18) = 32 bits, plus four
/// 19-bit DMQ entries = 76 bits; 108 bits ≈ 13.5 bytes (paper: "<15 bytes"),
/// independent of the threshold.
#[must_use]
pub fn mint_dmq_bytes() -> u64 {
    (32u64 + 4 * 19).div_ceil(8)
}

/// Graphene storage from our analytic Misra-Gries sizing (see
/// [`GrapheneConfig`](../../mint_trackers/struct.GrapheneConfig.html)):
/// `entries = ceil(W / (TRH_D/4))`, entry = 18-bit row + counter.
#[must_use]
pub fn graphene_bytes_analytic(trh_d: u32, acts_per_refw: u64) -> u64 {
    assert!(trh_d >= 4, "threshold too small");
    let t_mit = u64::from(trh_d) / 4;
    let entries = acts_per_refw.div_ceil(t_mit);
    let counter_bits = 64 - t_mit.leading_zeros() as u64;
    (entries * (18 + counter_bits)).div_ceil(8)
}

/// The paper's cited Graphene numbers (Table IX), reproduced as literature
/// constants: 56.5 KB at TRH-D = 3K, 565 KB at TRH-D = 300.
#[must_use]
pub fn graphene_bytes_paper(trh_d: u32) -> Option<u64> {
    match trh_d {
        3000 => Some((56.5 * 1024.0) as u64),
        300 => Some(565 * 1024),
        _ => None,
    }
}

/// Computes Table IX (both the paper's cited Graphene sizing and our
/// analytic sizing, so the discrepancy is visible rather than hidden).
#[must_use]
pub fn table9(acts_per_refw: u64) -> Vec<StorageRow> {
    vec![
        StorageRow {
            name: "Graphene (paper-cited)",
            bytes_at_3k: graphene_bytes_paper(3000).expect("constant"),
            bytes_at_300: graphene_bytes_paper(300).expect("constant"),
        },
        StorageRow {
            name: "Graphene (our analytic sizing)",
            bytes_at_3k: graphene_bytes_analytic(3000, acts_per_refw),
            bytes_at_300: graphene_bytes_analytic(300, acts_per_refw),
        },
        StorageRow {
            name: "MINT+DMQ",
            bytes_at_3k: mint_dmq_bytes(),
            bytes_at_300: mint_dmq_bytes(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_dmq_under_15_bytes() {
        let b = mint_dmq_bytes();
        assert!(b <= 15, "{b}");
        assert!(b >= 13, "{b}");
    }

    #[test]
    fn graphene_orders_of_magnitude_larger() {
        let rows = table9(598_016);
        let mint = rows.iter().find(|r| r.name == "MINT+DMQ").unwrap();
        for r in rows.iter().filter(|r| r.name != "MINT+DMQ") {
            assert!(
                r.bytes_at_3k > 100 * mint.bytes_at_3k,
                "{}: {} vs {}",
                r.name,
                r.bytes_at_3k,
                mint.bytes_at_3k
            );
        }
    }

    #[test]
    fn graphene_scales_10x_with_threshold() {
        let at_3k = graphene_bytes_analytic(3000, 598_016);
        let at_300 = graphene_bytes_analytic(300, 598_016);
        let ratio = at_300 as f64 / at_3k as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mint_storage_is_threshold_independent() {
        let rows = table9(598_016);
        let mint = rows.iter().find(|r| r.name == "MINT+DMQ").unwrap();
        assert_eq!(mint.bytes_at_3k, mint.bytes_at_300);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(graphene_bytes_paper(3000), Some(57_856));
        assert_eq!(graphene_bytes_paper(300), Some(578_560));
        assert_eq!(graphene_bytes_paper(1000), None);
    }
}
