//! The Sariou–Wolman failure-probability model (paper §IV-A, Eqs 5–7).

/// One "event" in the model is one opportunity for the defence to mitigate
/// the attacked row: a single hammer for single-copy patterns, or a batch of
/// `c` hammers for multi-copy patterns (the row is then mitigated with the
/// whole batch's probability at once).
///
/// The model answers: given that each event escapes mitigation with
/// probability `1 − p`, what is the probability that some run of
/// `threshold_events` consecutive events all escape, within a tREFW window
/// containing `events_per_refw` events?
///
/// Equations (5)–(7) of the paper:
///
/// ```text
/// P_k = 0                                          k < T
/// P_k = (1 − p)^T                                  k = T
/// P_k = p·(1 − p)^T·(1 − P_{k−T−1}) + P_{k−1}      k > T
/// ```
///
/// and the auto-refresh correction: the successful escape sequence spans `N`
/// tREFI, and the victim must not be swept by the background refresh during
/// it, so `P_REFW` is reduced by `(1 − N/8192)` (§IV-B).
///
/// # Examples
///
/// ```
/// use mint_analysis::SwModel;
///
/// // MINT pattern-1: p = 1/73, one hammer per tREFI, 8192 hammers/tREFW.
/// let m = SwModel {
///     p_mitigation: 1.0 / 73.0,
///     threshold_events: 2461,
///     events_per_refw: 8192,
///     refi_per_event: 1.0,
///     row_multiplier: 1.0,
/// };
/// let p = m.failure_prob_refw();
/// assert!(p > 0.0 && p < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwModel {
    /// Probability that one event triggers a mitigation of the row.
    pub p_mitigation: f64,
    /// Events that must escape consecutively for a bit-flip (T).
    pub threshold_events: u32,
    /// Events the attacked row experiences per tREFW window.
    pub events_per_refw: u32,
    /// tREFI intervals spanned by one event (for the auto-refresh term).
    pub refi_per_event: f64,
    /// Number of identical, independent attacked rows (failure probability
    /// is summed across them — pattern-2's `k` factor, §V-D).
    pub row_multiplier: f64,
}

impl SwModel {
    /// tREFI intervals per tREFW (fixed by the DDR5 configuration).
    pub const REFI_PER_REFW: f64 = 8192.0;

    /// The probability that the attacked row fails within one tREFW window
    /// (before the row multiplier).
    ///
    /// # Panics
    ///
    /// Panics if `p_mitigation` is outside `(0, 1]` or
    /// `threshold_events == 0`.
    #[must_use]
    pub fn failure_prob_refw_single_row(&self) -> f64 {
        assert!(
            self.p_mitigation > 0.0 && self.p_mitigation <= 1.0,
            "mitigation probability must be in (0, 1]"
        );
        assert!(self.threshold_events > 0, "threshold must be non-zero");
        let t = self.threshold_events as usize;
        let k_max = self.events_per_refw as usize;
        if t > k_max {
            return 0.0; // cannot accumulate T events within the window
        }
        let p = self.p_mitigation;
        // (1 − p)^T computed in log space to stay accurate for large T.
        let escape_t = ((1.0 - p).ln() * t as f64).exp();
        if escape_t == 0.0 {
            return 0.0;
        }
        // Rolling recurrence: we need P_{k−1} and P_{k−T−1}.
        // Keep the last T+1 values in a ring buffer.
        let mut ring = vec![0.0f64; t + 1];
        // Index k walks from T to k_max; ring[k % (t+1)] holds P_k.
        ring[t % (t + 1)] = escape_t;
        let mut prev = escape_t; // P_{k-1} as we advance
        for k in (t + 1)..=k_max {
            // P_{k-T-1}: for k = T+1 this is P_0 = 0; afterwards read ring.
            let lag = k - t - 1;
            let p_lag = if lag < t { 0.0 } else { ring[lag % (t + 1)] };
            let pk = p * escape_t * (1.0 - p_lag) + prev;
            ring[k % (t + 1)] = pk;
            prev = pk;
        }
        // Auto-refresh correction (§IV-B): the escape sequence spans
        // N = T × refi_per_event tREFI of the 8192-tREFI window.
        let n = t as f64 * self.refi_per_event;
        let auto = (1.0 - n / Self::REFI_PER_REFW).max(0.0);
        (prev * auto).clamp(0.0, 1.0)
    }

    /// Failure probability per tREFW across all attacked rows
    /// (`row_multiplier × single-row`, clamped to 1).
    #[must_use]
    pub fn failure_prob_refw(&self) -> f64 {
        (self.failure_prob_refw_single_row() * self.row_multiplier).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: f64, t: u32, events: u32) -> SwModel {
        SwModel {
            p_mitigation: p,
            threshold_events: t,
            events_per_refw: events,
            refi_per_event: 1.0,
            row_multiplier: 1.0,
        }
    }

    #[test]
    fn no_failure_below_threshold() {
        // k_max < T → impossible.
        assert_eq!(model(0.1, 10, 9).failure_prob_refw(), 0.0);
    }

    #[test]
    fn exactly_threshold_events() {
        // P = (1−p)^T × auto-correction.
        let m = model(0.1, 4, 4);
        let expect = 0.9f64.powi(4) * (1.0 - 4.0 / 8192.0);
        assert!((m.failure_prob_refw() - expect).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_enumeration() {
        // Small case: enumerate all mitigation outcomes exactly.
        // T = 3, k = 6, p = 0.3. Brute-force over 2^6 escape patterns:
        // failure iff some run of 3 consecutive escapes exists.
        let p: f64 = 0.3;
        let t = 3usize;
        let k = 6usize;
        let mut exact2 = 0.0;
        for mask in 0u32..(1 << k) {
            // bit = 1 → mitigated at that event.
            let mut run = 0;
            let mut failed = false;
            for i in 0..k {
                if mask >> i & 1 == 0 {
                    run += 1;
                    if run >= t {
                        failed = true;
                    }
                } else {
                    run = 0;
                }
            }
            if failed {
                let mut prob = 1.0;
                for i in 0..k {
                    prob *= if mask >> i & 1 == 1 { p } else { 1.0 - p };
                }
                exact2 += prob;
            }
        }
        let m = SwModel {
            p_mitigation: p,
            threshold_events: t as u32,
            events_per_refw: k as u32,
            refi_per_event: 0.0, // disable auto-refresh term for this check
            row_multiplier: 1.0,
        };
        let model_p = m.failure_prob_refw();
        assert!(
            (model_p - exact2).abs() < 1e-9,
            "model {model_p} vs exact {exact2}"
        );
    }

    #[test]
    fn monotone_decreasing_in_threshold() {
        let mut last = 1.0;
        for t in [100u32, 200, 400, 800, 1600, 3200] {
            let p = model(1.0 / 74.0, t, 8192).failure_prob_refw();
            assert!(p < last, "T={t}: {p} not < {last}");
            last = p;
        }
    }

    #[test]
    fn monotone_increasing_in_events() {
        let mut last = 0.0;
        for k in [3000u32, 4000, 6000, 8192] {
            let p = model(1.0 / 74.0, 2800, k).failure_prob_refw();
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn row_multiplier_scales_linearly() {
        let base = model(1.0 / 74.0, 2800, 8192);
        let x73 = SwModel {
            row_multiplier: 73.0,
            ..base
        };
        let a = base.failure_prob_refw();
        let b = x73.failure_prob_refw();
        assert!((b / a - 73.0).abs() < 1e-6);
    }

    #[test]
    fn paper_anchor_mint_pattern2_is_near_target_at_2800() {
        // §V-E: with p = 1/74 and 73 rows, MinTRH = 2800 at the 10K-year
        // target (P_target ≈ 1.03e-13 per tREFW). The failure probability at
        // T = 2800 must straddle that target within a small factor.
        let m = SwModel {
            p_mitigation: 1.0 / 74.0,
            threshold_events: 2800,
            events_per_refw: 8192,
            refi_per_event: 1.0,
            row_multiplier: 73.0,
        };
        let p = m.failure_prob_refw();
        assert!(
            (2e-14..5e-13).contains(&p),
            "P at the paper's MinTRH should be near 1e-13, got {p}"
        );
    }

    #[test]
    fn auto_refresh_zeroes_impossible_sequences() {
        // A sequence spanning more than the whole tREFW cannot succeed.
        let m = SwModel {
            p_mitigation: 0.5,
            threshold_events: 9000,
            events_per_refw: 10_000,
            refi_per_event: 1.0,
            row_multiplier: 1.0,
        };
        assert_eq!(m.failure_prob_refw(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mitigation probability")]
    fn invalid_probability_rejected() {
        let _ = model(0.0, 10, 100).failure_prob_refw();
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let _ = model(0.5, 0, 100).failure_prob_refw();
    }
}
