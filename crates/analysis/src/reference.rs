//! Literature reference data (paper Table II): the Rowhammer threshold
//! across DRAM generations.

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct TrhHistoryRow {
    /// DRAM generation label.
    pub generation: &'static str,
    /// Single-sided threshold, if reported.
    pub trh_s: Option<&'static str>,
    /// Double-sided threshold, if reported.
    pub trh_d: Option<&'static str>,
}

/// Table II as reported in the paper (values are literature citations, not
/// measurements — kept as strings to preserve the reported ranges).
#[must_use]
pub fn table2() -> Vec<TrhHistoryRow> {
    vec![
        TrhHistoryRow {
            generation: "DDR3-old",
            trh_s: Some("139K"),
            trh_d: None,
        },
        TrhHistoryRow {
            generation: "DDR3-new",
            trh_s: None,
            trh_d: Some("22.4K"),
        },
        TrhHistoryRow {
            generation: "DDR4",
            trh_s: None,
            trh_d: Some("10K - 17.5K"),
        },
        TrhHistoryRow {
            generation: "LPDDR4",
            trh_s: None,
            trh_d: Some("4.8K - 9K"),
        },
    ]
}

/// The numeric envelope of Table II: (oldest single-sided, newest
/// double-sided low end) — used by examples to put MinTRH numbers in
/// context.
#[must_use]
pub fn trh_envelope() -> (u32, u32) {
    (139_000, 4_800)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_generations() {
        assert_eq!(table2().len(), 4);
    }

    #[test]
    fn threshold_dropped_29x() {
        let (old, new) = trh_envelope();
        assert!(old / new >= 28);
    }

    #[test]
    fn mint_rfm16_covers_observed_thresholds() {
        // The paper's point: MINT+RFM16 tolerates 356, well under the
        // lowest observed device threshold of 4.8K.
        let (_, lowest_observed) = trh_envelope();
        assert!(356 < lowest_observed);
    }
}
