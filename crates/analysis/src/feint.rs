//! The Feinting attack against PRCT (paper §II-H / §V-G), by exact
//! water-filling simulation.

/// Result of a feinting-attack simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeintResult {
    /// Maximum total activations delivered to the shared victim of the two
    /// surviving rows (the single-sided-equivalent MinTRH of the design).
    pub victim_total: u32,
    /// Per-row activations of the final pair (= MinTRH-D).
    pub per_row: u32,
    /// Number of rows the attack started with.
    pub start_rows: u32,
}

/// Simulates the ProTRR Feinting attack against an idealized per-row
/// counter table that mitigates the max-counter row at each REF.
///
/// The attacker starts with `start_rows` aggressor rows and distributes the
/// `acts_per_refi` activations of each tREFI to keep all remaining rows'
/// counters as equal as possible (water-filling). The defender removes the
/// max row each REF. When only two rows remain, they are arranged
/// double-sided around the victim, and the attack focuses everything on
/// them until both are mitigated.
///
/// The exact integer simulation reproduces the paper's PRCT numbers:
/// MinTRH 1226 / MinTRH-D 623 (§II-H).
///
/// # Panics
///
/// Panics if `start_rows < 2` or `start_rows > refis` (the defender would
/// run out of REFs before the end-game) or `acts_per_refi == 0`.
///
/// # Examples
///
/// ```
/// use mint_analysis::feint::feinting_attack;
/// let r = feinting_attack(8192, 73, 8192);
/// assert!((600..650).contains(&r.per_row)); // paper: 623
/// ```
#[must_use]
pub fn feinting_attack(start_rows: u32, acts_per_refi: u32, refis: u32) -> FeintResult {
    assert!(start_rows >= 2, "need at least the final double-sided pair");
    assert!(acts_per_refi > 0, "need at least one activation per tREFI");
    assert!(
        start_rows <= refis,
        "defender must have enough REFs to whittle the rows down"
    );
    // All remaining rows share the same *water level* (min count); a budget
    // of fractional activations is spread exactly, tracked in integer
    // activations with a remainder wheel for exactness.
    //
    // Representation: all `n` remaining rows have count `level` or
    // `level + 1`; `high` of them have `level + 1`.
    let mut n = start_rows;
    let mut level: u32 = 0;
    let mut high: u32 = 0;
    let mut refi = 0u32;
    while n > 2 && refi < refis {
        // Spread this tREFI's budget over the n rows, lowest first.
        let budget = acts_per_refi;
        let low = n - high;
        if budget >= low {
            // Fill all the low rows up to level+1 (everyone is now equal),
            // then spread the remainder evenly from the new level.
            let remaining = budget - low;
            level += 1 + remaining / n;
            high = remaining % n;
        } else {
            high += budget;
        }
        // Defender mitigates the max-count row (one of the `high` rows if
        // any, else a `level` row) and the attacker abandons it.
        high = high.saturating_sub(1);
        n -= 1;
        refi += 1;
    }
    // End-game: two rows left, flanking the victim. One final tREFI splits
    // the budget across the pair; at its REF the defender mitigates one of
    // them, which *refreshes the shared victim* — so all damage must land
    // before that. The victim's exposure is the pair's combined count at
    // the end of this round.
    let mut a = level + u32::from(high >= 1);
    let mut b = level + u32::from(high >= 2);
    if refi < refis {
        a += acts_per_refi / 2;
        b += acts_per_refi - acts_per_refi / 2;
    }
    FeintResult {
        victim_total: a + b,
        per_row: (a + b) / 2,
        start_rows,
    }
}

/// PRCT's MinTRH-D under the feinting attack with the paper's parameters.
#[must_use]
pub fn prct_min_trh_d() -> u32 {
    feinting_attack(8192, 73, 8192).per_row
}

/// PRCT's MinTRH-D under maximum refresh postponement (§VI-A): the selected
/// row gains up to `4 × MaxACT` extra activations, split across the
/// double-sided pair.
#[must_use]
pub fn prct_min_trh_d_postponed(max_act: u32) -> u32 {
    prct_min_trh_d() + 2 * max_act
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_prct_623() {
        let r = feinting_attack(8192, 73, 8192);
        assert!(
            (600..650).contains(&r.per_row),
            "PRCT MinTRH-D should be ≈623, got {}",
            r.per_row
        );
        assert!(
            (1200..1300).contains(&r.victim_total),
            "PRCT MinTRH should be ≈1226, got {}",
            r.victim_total
        );
    }

    #[test]
    fn postponement_adds_146_double_sided() {
        // Table IV: PRCT 623 → 769.
        let base = prct_min_trh_d();
        let post = prct_min_trh_d_postponed(73);
        assert_eq!(post - base, 146);
        assert!((740..790).contains(&post), "{post}");
    }

    #[test]
    fn more_rows_help_the_attacker() {
        let small = feinting_attack(1024, 73, 8192);
        let large = feinting_attack(8192, 73, 8192);
        assert!(large.victim_total > small.victim_total);
    }

    #[test]
    fn harmonic_growth_shape() {
        // The water level grows like 73·H_n, so doubling the rows adds
        // ≈73·ln 2 ≈ 50.6 per row — ≈101 on the two-row victim total.
        let a = feinting_attack(2048, 73, 8192).victim_total as f64;
        let b = feinting_attack(4096, 73, 8192).victim_total as f64;
        let delta = b - a;
        assert!((80.0..130.0).contains(&delta), "delta {delta}");
    }

    #[test]
    fn degenerate_two_rows() {
        // Straight to the end-game: a single split round before the REF
        // mitigates one of the pair (refreshing the victim).
        let r = feinting_attack(2, 73, 8192);
        assert_eq!(r.victim_total, 73);
        assert_eq!(r.per_row, 36);
    }

    #[test]
    #[should_panic(expected = "final double-sided pair")]
    fn one_row_rejected() {
        let _ = feinting_attack(1, 73, 8192);
    }

    #[test]
    #[should_panic(expected = "enough REFs")]
    fn too_many_rows_rejected() {
        let _ = feinting_attack(10_000, 73, 8192);
    }
}
