//! InDRAM-PARA analysis: the non-uniformity curves of §III and the design's
//! MinTRH, including the refresh-postponement regime of §VI-B.

use crate::mttf::MinTrhSolver;
use crate::sw::SwModel;

/// Survival probability of a row sampled at position `k` (1-based) of an
/// `m`-slot window with sampling probability `p` (Eq 2, Fig 3):
/// `S_k = (1 − p)^(m − k)`.
///
/// # Examples
///
/// ```
/// use mint_analysis::para::survival_probability;
/// let s1 = survival_probability(1.0 / 73.0, 73, 1);
/// let s73 = survival_probability(1.0 / 73.0, 73, 73);
/// assert!((s73 - 1.0).abs() < 1e-12);
/// assert!((s1 - 0.372).abs() < 0.01); // the paper's 2.7x penalty
/// ```
#[must_use]
pub fn survival_probability(p: f64, m: u32, k: u32) -> f64 {
    assert!(k >= 1 && k <= m, "position must be in 1..=m");
    (1.0 - p).powi((m - k) as i32)
}

/// Sampling probability of position `k` for the no-overwrite variant
/// (Eq 3 with the first position normalised to `p`, Fig 5):
/// `P_k = p·(1 − p)^(k − 1)`.
///
/// (The paper's Eq 3 writes the exponent as `K`; its Fig 5 normalises
/// position 1 to exactly `p`, which corresponds to the `k − 1` exponent
/// used here.)
#[must_use]
pub fn sampling_probability_no_overwrite(p: f64, m: u32, k: u32) -> f64 {
    assert!(k >= 1 && k <= m, "position must be in 1..=m");
    p * (1.0 - p).powi((k - 1) as i32)
}

/// Relative mitigation probability of position `k` (normalised to the ideal
/// uniform `p`), for both variants (Fig 6).
#[must_use]
pub fn relative_mitigation(p: f64, m: u32, k: u32, no_overwrite: bool) -> f64 {
    if no_overwrite {
        sampling_probability_no_overwrite(p, m, k) / p
    } else {
        survival_probability(p, m, k)
    }
}

/// The worst-position mitigation probability of InDRAM-PARA: position 1
/// (overwrite variant), `p(1 − p)^(m−1)` — the paper's 2.7× penalty
/// (`≈ 1/196` for m = 73).
#[must_use]
pub fn worst_position_probability(p: f64, m: u32) -> f64 {
    p * survival_probability(p, m, 1)
}

/// MinTRH of InDRAM-PARA under timely refresh.
///
/// The attack (following §III-C: the adversary synchronises to the most
/// vulnerable position) fills every slot of every tREFI with attack rows;
/// the row at position `k` is mitigated per-hammer with
/// `p·(1 − p)^(m−k)`. The total failure probability sums the per-position
/// failure probabilities; it is dominated by position 1 but the later
/// positions contribute a small multiplier.
#[must_use]
pub fn min_trh(solver: &MinTrhSolver, m: u32) -> u32 {
    let p = 1.0 / f64::from(m);
    let budget = solver.prob_budget();
    let prob = |t: u32| -> f64 {
        let mut total = 0.0;
        for k in 1..=m {
            let pk = p * survival_probability(p, m, k);
            let model = SwModel {
                p_mitigation: pk,
                threshold_events: t,
                events_per_refw: 8192,
                refi_per_event: 1.0,
                row_multiplier: 1.0,
            };
            total += model.failure_prob_refw();
            if total > budget * 1e3 {
                break; // already hopeless; avoid wasted work
            }
        }
        total.clamp(0.0, 1.0)
    };
    solver.min_threshold(1, 8192, &prob)
}

/// MinTRH of InDRAM-PARA under maximum refresh postponement *without* a DMQ
/// (§VI-B): between refresh opportunities there are `5m` slots. The attacker
/// devotes the first `s` slots of each super-window to the attack row and
/// fills the rest with decoys, so the row is mitigated per super-window with
/// probability `(1 − (1−p)^s)·(1−p)^(5m−s)` — sampled at least once AND the
/// last sample survives the decoy tail. The attacker picks the `s` that
/// maximises the tolerated threshold.
#[must_use]
pub fn min_trh_postponed_no_dmq(solver: &MinTrhSolver, m: u32) -> u32 {
    let p = 1.0 / f64::from(m);
    let slots = 5 * m;
    let windows_per_refw = 8192 / 5;
    let mut worst = 0u32;
    // Sweep the attacker's knob: hammers per super-window.
    for s in (1..=slots).step_by(4) {
        let p_mit = (1.0 - (1.0 - p).powi(s as i32)) * (1.0 - p).powi((slots - s) as i32);
        if p_mit <= 0.0 {
            continue;
        }
        let prob = |t_acts: u32| -> f64 {
            let batches = t_acts.div_ceil(s).max(1);
            let model = SwModel {
                p_mitigation: p_mit,
                threshold_events: batches,
                events_per_refw: windows_per_refw,
                refi_per_event: 5.0,
                row_multiplier: 1.0,
            };
            model.failure_prob_refw()
        };
        let max_acts = s * windows_per_refw;
        let t = solver.min_threshold(1, max_acts, &prob);
        worst = worst.max(t);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf::TargetMttf;

    fn solver() -> MinTrhSolver {
        MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
    }

    #[test]
    fn survival_is_monotone_in_position() {
        let p = 1.0 / 73.0;
        let mut last = 0.0;
        for k in 1..=73 {
            let s = survival_probability(p, 73, k);
            assert!(s > last);
            last = s;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_first_position_about_037() {
        let s = survival_probability(1.0 / 73.0, 73, 1);
        assert!((s - 0.3722).abs() < 0.002, "{s}");
    }

    #[test]
    fn fig5_last_position_about_037_relative() {
        let p = 1.0 / 73.0;
        let rel = sampling_probability_no_overwrite(p, 73, 73) / p;
        // (1 − 1/73)^72 = 0.37042 — the paper rounds this to "about 0.37x".
        assert!((rel - 0.3704).abs() < 0.002, "{rel}");
    }

    #[test]
    fn fig6_both_variants_27x_penalty() {
        let p = 1.0 / 73.0;
        let over = relative_mitigation(p, 73, 1, false);
        let nover = relative_mitigation(p, 73, 73, true);
        assert!(
            (1.0 / over - 2.69).abs() < 0.1,
            "overwrite penalty {}",
            1.0 / over
        );
        assert!(
            (1.0 / nover - 2.65).abs() < 0.1,
            "no-overwrite penalty {}",
            1.0 / nover
        );
    }

    #[test]
    fn worst_position_is_one_in_196() {
        let w = worst_position_probability(1.0 / 73.0, 73);
        assert!((1.0 / w - 196.1).abs() < 1.0, "{}", 1.0 / w);
    }

    #[test]
    fn min_trh_about_2x_to_3x_of_mint() {
        // Paper: InDRAM-PARA tolerates ≈2.7× the ideal 2.8K → ≈7.5K single
        // (3732 double-sided). Our summed-position model lands in the same
        // band; the exact constant is recorded in EXPERIMENTS.md.
        let t = min_trh(&solver(), 73);
        assert!(
            (5500..8192).contains(&t),
            "InDRAM-PARA MinTRH should be in the 6-8K band, got {t}"
        );
    }

    #[test]
    fn postponement_explodes_min_trh() {
        // §VI-B: from ~3.7K-D to >21K-D without DMQ. Single-sided: > 15K.
        let base = min_trh(&solver(), 73);
        let post = min_trh_postponed_no_dmq(&solver(), 73);
        assert!(
            post > 3 * base,
            "postponement should blow up the threshold: {post} vs base {base}"
        );
        assert!(post > 15_000, "expected >15K single-sided, got {post}");
    }

    #[test]
    #[should_panic(expected = "position")]
    fn position_zero_rejected() {
        let _ = survival_probability(0.5, 10, 0);
    }
}
