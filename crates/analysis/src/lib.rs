//! Analytical security models for in-DRAM Rowhammer trackers.
//!
//! This crate is the quantitative core of the MINT reproduction: it
//! implements the paper's §IV methodology — the Sariou–Wolman
//! failure-probability recurrence, MTTF computation and the *MinTRH* figure
//! of merit — and applies it to every design and every experiment:
//!
//! * [`sw`] — the failure-probability recurrence (Eqs 5–7) with the
//!   auto-refresh correction, and its batched generalisation.
//! * [`mttf`] — MTTF conversion, the 10,000-year target, and the binary
//!   search defining MinTRH.
//! * [`para`] — InDRAM-PARA: survival/sampling curves (Figs 3, 5, 6) and its
//!   MinTRH, including the refresh-postponement regime.
//! * [`patterns`] — MINT worst-case pattern sweeps (Figs 10, 11).
//! * [`feint`] — the Feinting attack against PRCT (§V-G) by exact
//!   water-filling simulation.
//! * [`mithril_bound`] — the entries-vs-threshold trade-off for Mithril.
//! * [`ada`] — the Markov-chain model of adaptive attacks on MINT+DMQ
//!   (Appendix B, Fig 21).
//! * [`comparison`] — Table III; [`postponement`] — Table IV; [`rfm`] —
//!   Table V; [`ttf`] — Table VII; [`storage`] — Table IX;
//!   [`maxact`] — Fig 18 (Appendix A).
//! * [`reference`](mod@reference) — literature constants (Table II).
//! * [`textable`] — the plain-text/TSV table writer used by every
//!   regeneration binary.

pub mod ada;
pub mod comparison;
pub mod feint;
pub mod maxact;
pub mod mithril_bound;
pub mod mttf;
pub mod para;
pub mod patterns;
pub mod postponement;
pub mod reference;
pub mod rfm;
pub mod storage;
pub mod sw;
pub mod textable;
pub mod ttf;

pub use mttf::{MinTrhSolver, TargetMttf};
pub use sw::SwModel;
