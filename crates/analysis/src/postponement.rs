//! Table IV: the impact of refresh postponement, with and without the DMQ.

use crate::ada::AdaConfig;
use crate::mttf::MinTrhSolver;
use crate::{feint, mithril_bound, para, patterns};

/// One row of Table IV. Thresholds are double-sided (per-row); the
/// `no_dmq` column for window-synchronised trackers reports the
/// *deterministic unmitigated activation count* the §VI-B attack achieves
/// (the paper prints "478K" there).
#[derive(Debug, Clone, PartialEq)]
pub struct PostponementRow {
    /// Design name.
    pub design: &'static str,
    /// Entries per bank.
    pub entries: u64,
    /// MinTRH-D with timely refresh.
    pub no_postpone: u32,
    /// MinTRH-D (or deterministic ACT count) under postponement, no DMQ.
    pub postponed_no_dmq: u32,
    /// MinTRH-D under postponement with the DMQ (for MINT: simple attack).
    pub with_dmq: u32,
    /// MinTRH-D under postponement with DMQ and the adaptive attack
    /// (differs from `with_dmq` only for MINT).
    pub with_dmq_adaptive: u32,
}

/// The §VI-B deterministic attack volume: invisible activations per tREFW
/// for a window-synchronised tracker under maximum postponement.
#[must_use]
pub fn deterministic_attack_acts(max_act: u32, refis_per_refw: u32, batch: u32) -> u32 {
    (refis_per_refw / batch) * (batch - 1) * max_act
}

/// Computes every row of Table IV.
#[must_use]
pub fn table4(solver: &MinTrhSolver) -> Vec<PostponementRow> {
    let max_act = 73u32;
    let det = deterministic_attack_acts(max_act, 8192, 5);

    let prct = feint::prct_min_trh_d();
    let prct_post = feint::prct_min_trh_d_postponed(max_act);

    let mithril = mithril_bound::min_trh_d(677);
    let mithril_post = mithril_bound::min_trh_d_postponed(677, max_act);

    // DMQ delay penalty: a selected row waits at most 4 × MaxACT = 292
    // activations in the FIFO → +146 double-sided (§VI-D).
    let dmq_penalty_d = 2 * max_act;

    let transitive_d = crate::comparison::transitive_min_trh_d(8192);
    let parfm_direct = patterns::pattern2_min_trh(solver, max_act, max_act, max_act) / 2;
    let parfm = parfm_direct.max(transitive_d);
    let parfm_dmq = parfm + dmq_penalty_d;

    let para_base = para::min_trh(solver, max_act) / 2;
    let para_no_dmq = para::min_trh_postponed_no_dmq(solver, max_act) / 2;
    // With a DMQ the sampling window is activation-counted again, restoring
    // the timely-refresh dynamics plus the FIFO delay.
    let para_dmq = para_base + dmq_penalty_d;

    let mint_cfg = AdaConfig::mint_default();
    let mint_base = patterns::pattern2_min_trh(solver, max_act, max_act, max_act + 1) / 2;
    let mint_dmq_simple = mint_cfg.dmq_simple_min_trh_d(solver);
    let mint_dmq_ada = mint_cfg.ada_min_trh_d(solver);

    vec![
        PostponementRow {
            design: "PRCT",
            entries: 128 * 1024,
            no_postpone: prct,
            postponed_no_dmq: prct_post,
            with_dmq: prct_post,
            with_dmq_adaptive: prct_post,
        },
        PostponementRow {
            design: "Mithril",
            entries: 677,
            no_postpone: mithril,
            postponed_no_dmq: mithril_post,
            with_dmq: mithril_post,
            with_dmq_adaptive: mithril_post,
        },
        PostponementRow {
            design: "PARFM",
            entries: 73,
            no_postpone: parfm,
            postponed_no_dmq: det,
            with_dmq: parfm_dmq,
            with_dmq_adaptive: parfm_dmq,
        },
        PostponementRow {
            design: "InDRAM-PARA",
            entries: 1,
            no_postpone: para_base,
            postponed_no_dmq: para_no_dmq,
            with_dmq: para_dmq,
            with_dmq_adaptive: para_dmq,
        },
        PostponementRow {
            design: "MINT",
            entries: 1,
            no_postpone: mint_base,
            postponed_no_dmq: det,
            with_dmq: mint_dmq_simple,
            with_dmq_adaptive: mint_dmq_ada,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf::TargetMttf;

    fn rows() -> Vec<PostponementRow> {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        table4(&solver)
    }

    fn get(rows: &[PostponementRow], name: &str) -> PostponementRow {
        rows.iter().find(|r| r.design == name).unwrap().clone()
    }

    #[test]
    fn deterministic_attack_is_478k() {
        assert_eq!(deterministic_attack_acts(73, 8192, 5), 478_296);
    }

    #[test]
    fn mint_collapses_without_dmq() {
        let rows = rows();
        let mint = get(&rows, "MINT");
        assert_eq!(mint.postponed_no_dmq, 478_296);
        assert!(
            mint.with_dmq < 1500,
            "DMQ must restore MINT: {}",
            mint.with_dmq
        );
    }

    #[test]
    fn parfm_collapses_without_dmq() {
        let rows = rows();
        let parfm = get(&rows, "PARFM");
        assert_eq!(parfm.postponed_no_dmq, 478_296);
        assert!((4200..4300).contains(&parfm.with_dmq), "{}", parfm.with_dmq);
    }

    #[test]
    fn counter_trackers_degrade_gracefully() {
        let rows = rows();
        let prct = get(&rows, "PRCT");
        assert_eq!(prct.postponed_no_dmq - prct.no_postpone, 146);
        let mithril = get(&rows, "Mithril");
        assert_eq!(mithril.postponed_no_dmq - mithril.no_postpone, 146);
    }

    #[test]
    fn para_blows_up_without_dmq() {
        let rows = rows();
        let para = get(&rows, "InDRAM-PARA");
        assert!(
            para.postponed_no_dmq > 3 * para.no_postpone,
            "{} vs {}",
            para.postponed_no_dmq,
            para.no_postpone
        );
    }

    #[test]
    fn mint_dmq_adaptive_near_1482() {
        let rows = rows();
        let mint = get(&rows, "MINT");
        assert!(
            (1420..1540).contains(&mint.with_dmq_adaptive),
            "{}",
            mint.with_dmq_adaptive
        );
        assert!(mint.with_dmq_adaptive >= mint.with_dmq);
    }

    #[test]
    fn mint_beats_677_entry_mithril_under_postponement() {
        // The paper's headline: MINT+DMQ (1482) outperforms Mithril-677
        // (1546) once refresh postponement is accounted for.
        let rows = rows();
        let mint = get(&rows, "MINT");
        let mithril = get(&rows, "Mithril");
        assert!(
            mint.with_dmq_adaptive < mithril.with_dmq,
            "MINT {} should beat Mithril {}",
            mint.with_dmq_adaptive,
            mithril.with_dmq
        );
    }

    #[test]
    fn mint_within_2x_of_prct_under_postponement() {
        let rows = rows();
        let mint = get(&rows, "MINT");
        let prct = get(&rows, "PRCT");
        let ratio = f64::from(mint.with_dmq_adaptive) / f64::from(prct.with_dmq);
        assert!((1.5..2.2).contains(&ratio), "ratio {ratio} (paper: 1.9x)");
    }
}
