//! Table V: scaling MINT to lower thresholds with RFM.

use crate::ada::AdaConfig;
use crate::mttf::MinTrhSolver;

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct RfmRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Human-readable relative mitigation rate.
    pub rate: &'static str,
    /// MinTRH-D (per-row, with DMQ, under the adaptive attack).
    pub min_trh_d: u32,
}

/// Computes Table V: MINT at 0.5×/1× rate and MINT+RFM32/RFM16, all with
/// DMQ and under adaptive attacks.
#[must_use]
pub fn table5(solver: &MinTrhSolver) -> Vec<RfmRow> {
    vec![
        RfmRow {
            scheme: "MINT",
            rate: "0.5x (one per two tREFI)",
            min_trh_d: AdaConfig::half_rate().ada_min_trh_d(solver),
        },
        RfmRow {
            scheme: "MINT",
            rate: "1x (one per tREFI)",
            min_trh_d: AdaConfig::mint_default().ada_min_trh_d(solver),
        },
        RfmRow {
            scheme: "MINT+RFM32",
            rate: "2x (approx two per tREFI)",
            min_trh_d: AdaConfig::rfm(32).ada_min_trh_d(solver),
        },
        RfmRow {
            scheme: "MINT+RFM16",
            rate: "4x (approx four per tREFI)",
            min_trh_d: AdaConfig::rfm(16).ada_min_trh_d(solver),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf::TargetMttf;

    #[test]
    fn table5_monotone_in_rate() {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let rows = table5(&solver);
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(
                pair[0].min_trh_d > pair[1].min_trh_d,
                "{} ({}) should exceed {} ({})",
                pair[0].scheme,
                pair[0].min_trh_d,
                pair[1].scheme,
                pair[1].min_trh_d
            );
        }
        // Paper anchors: 2.70K / 1.48K / 689 / 356.
        assert!(
            (2500..2950).contains(&rows[0].min_trh_d),
            "{}",
            rows[0].min_trh_d
        );
        assert!(
            (1420..1540).contains(&rows[1].min_trh_d),
            "{}",
            rows[1].min_trh_d
        );
        assert!(
            (620..740).contains(&rows[2].min_trh_d),
            "{}",
            rows[2].min_trh_d
        );
        assert!(
            (310..390).contains(&rows[3].min_trh_d),
            "{}",
            rows[3].min_trh_d
        );
    }

    #[test]
    fn rfm16_scales_about_4x_down() {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let rows = table5(&solver);
        let ratio = f64::from(rows[1].min_trh_d) / f64::from(rows[3].min_trh_d);
        assert!((3.0..5.2).contains(&ratio), "ratio {ratio} (paper ≈ 4.2x)");
    }
}
