//! MTTF computation and the MinTRH figure of merit (paper §IV-B/C).

use crate::sw::SwModel;

/// Seconds per (Julian) year.
pub const SECS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Banks usable concurrently in the evaluated system (§VIII-B: 64 banks,
/// 22 concurrently active due to tFAW) — converts per-bank MTTF to system
/// MTTF in Table VII.
pub const CONCURRENT_BANKS: f64 = 22.0;

/// The reliability target: mean time to failure per bank.
///
/// The paper's default is 10,000 years per bank, chosen to match the
/// per-bank rate of naturally occurring DRAM faults (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetMttf {
    /// Target MTTF per bank, in years.
    pub years_per_bank: f64,
}

impl TargetMttf {
    /// The paper's default target: 10,000 years per bank.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            years_per_bank: 10_000.0,
        }
    }

    /// The maximum tolerable failure probability per tREFW window.
    #[must_use]
    pub fn max_failure_prob_per_refw(&self, t_refw_secs: f64) -> f64 {
        let windows_per_year = SECS_PER_YEAR / t_refw_secs;
        1.0 / (self.years_per_bank * windows_per_year)
    }

    /// System-level MTTF corresponding to this per-bank target (Table VII).
    #[must_use]
    pub fn system_mttf_years(&self) -> f64 {
        self.years_per_bank / CONCURRENT_BANKS
    }
}

impl Default for TargetMttf {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Converts a per-tREFW failure probability into MTTF in years (Eq 8).
#[must_use]
pub fn mttf_years(p_refw: f64, t_refw_secs: f64) -> f64 {
    if p_refw <= 0.0 {
        return f64::INFINITY;
    }
    t_refw_secs / p_refw / SECS_PER_YEAR
}

/// Binary-searches the Minimum Tolerated TRH (§IV-C): the lowest threshold
/// (in *events*; callers convert to activations) for which the design meets
/// the target MTTF.
///
/// `prob_at(t)` must be monotonically non-increasing in `t` (more required
/// consecutive escapes → less likely).
///
/// # Examples
///
/// ```
/// use mint_analysis::{MinTrhSolver, TargetMttf};
///
/// let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
/// // A design failing with probability 2^-t per window:
/// let t = solver.min_threshold(1, 10_000, &|t| 0.5f64.powi(t as i32));
/// assert!((40..60).contains(&t));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MinTrhSolver {
    target: TargetMttf,
    t_refw_secs: f64,
}

impl MinTrhSolver {
    /// Creates a solver for a device whose refresh window lasts
    /// `t_refw_secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t_refw_secs <= 0`.
    #[must_use]
    pub fn new(target: TargetMttf, t_refw_secs: f64) -> Self {
        assert!(t_refw_secs > 0.0, "tREFW must be positive");
        Self {
            target,
            t_refw_secs,
        }
    }

    /// The solver's target.
    #[must_use]
    pub fn target(&self) -> TargetMttf {
        self.target
    }

    /// The failure-probability budget per tREFW.
    #[must_use]
    pub fn prob_budget(&self) -> f64 {
        self.target.max_failure_prob_per_refw(self.t_refw_secs)
    }

    /// Smallest `t` in `[lo, hi]` with `prob_at(t) ≤ budget`, or `hi` if
    /// none qualifies (the design cannot meet the target in range — callers
    /// treat `hi` as "≥ hi").
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0` or `lo > hi`.
    #[must_use]
    pub fn min_threshold(&self, lo: u32, hi: u32, prob_at: &dyn Fn(u32) -> f64) -> u32 {
        assert!(lo > 0 && lo <= hi, "invalid search range [{lo}, {hi}]");
        let budget = self.prob_budget();
        if prob_at(hi) > budget {
            return hi;
        }
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if prob_at(mid) <= budget {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// MinTRH for a [`SwModel`] family parameterised by its threshold, with
    /// thresholds expressed in *activations* and `acts_per_event` activations
    /// per model event (1 for single-copy patterns, `c` for pattern-3).
    #[must_use]
    pub fn min_trh_sw(&self, template: &SwModel, acts_per_event: u32, max_acts: u32) -> u32 {
        assert!(acts_per_event > 0, "acts_per_event must be non-zero");
        let prob = |acts: u32| {
            let events = acts.div_ceil(acts_per_event);
            let m = SwModel {
                threshold_events: events.max(1),
                ..*template
            };
            m.failure_prob_refw()
        };
        self.min_threshold(1, max_acts, &prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_budget_matches_paper_scale() {
        // 10K years per bank at tREFW = 32 ms → ~1.0e-13 per window.
        let t = TargetMttf::paper_default();
        let budget = t.max_failure_prob_per_refw(0.032);
        assert!((0.8e-13..1.3e-13).contains(&budget), "{budget}");
    }

    #[test]
    fn system_mttf_is_per_bank_over_22() {
        // Table VII: 10K years/bank → 450 years system.
        let t = TargetMttf::paper_default();
        let sys = t.system_mttf_years();
        assert!((450.0 - sys).abs() < 10.0, "{sys}");
    }

    #[test]
    fn mttf_years_conversion() {
        assert!(mttf_years(0.0, 0.032).is_infinite());
        let y = mttf_years(1e-13, 0.032);
        assert!((y - 0.032 / 1e-13 / SECS_PER_YEAR).abs() < 1.0);
    }

    #[test]
    fn binary_search_finds_boundary() {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let budget = solver.prob_budget();
        // Step function: above budget until 1234, below afterwards.
        let f = |t: u32| {
            if t < 1234 {
                budget * 10.0
            } else {
                budget / 10.0
            }
        };
        assert_eq!(solver.min_threshold(1, 8192, &f), 1234);
    }

    #[test]
    fn unreachable_target_returns_hi() {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let f = |_t: u32| 1.0;
        assert_eq!(solver.min_threshold(1, 100, &f), 100);
    }

    #[test]
    fn paper_anchor_pattern1_minthr() {
        // §V-D pattern-1: p = 1/73, one hammer per tREFI → MinTRH 2461.
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let template = SwModel {
            p_mitigation: 1.0 / 73.0,
            threshold_events: 1,
            events_per_refw: 8192,
            refi_per_event: 1.0,
            row_multiplier: 1.0,
        };
        let t = solver.min_trh_sw(&template, 1, 8192);
        assert!(
            (2400..2530).contains(&t),
            "pattern-1 MinTRH should be ≈2461, got {t}"
        );
    }

    #[test]
    fn paper_anchor_pattern2_k73_minthr() {
        // §V-D pattern-2 with k=73 (pre-transitive, p = 1/73): MinTRH 2763.
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let template = SwModel {
            p_mitigation: 1.0 / 73.0,
            threshold_events: 1,
            events_per_refw: 8192,
            refi_per_event: 1.0,
            row_multiplier: 73.0,
        };
        let t = solver.min_trh_sw(&template, 1, 8192);
        assert!(
            (2700..2830).contains(&t),
            "pattern-2 MinTRH should be ≈2763, got {t}"
        );
    }

    #[test]
    fn paper_anchor_mint_transitive_2800() {
        // §V-E: with the transitive slot, p = 1/74 → MinTRH 2800 (D 1400).
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let template = SwModel {
            p_mitigation: 1.0 / 74.0,
            threshold_events: 1,
            events_per_refw: 8192,
            refi_per_event: 1.0,
            row_multiplier: 73.0,
        };
        let t = solver.min_trh_sw(&template, 1, 8192);
        assert!(
            (2740..2870).contains(&t),
            "MINT MinTRH should be ≈2800, got {t}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid search range")]
    fn bad_range_rejected() {
        let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
        let _ = solver.min_threshold(0, 10, &|_| 0.0);
    }
}
