//! MinTRH for the MINT worst-case pattern family (§V-D, Figs 10 and 11).

use crate::mttf::MinTrhSolver;
use crate::sw::SwModel;

/// MinTRH of pattern-2 with `k` attack rows (Fig 10).
///
/// Every row is activated once per sweep; a sweep takes
/// `ceil(k / max_act)` tREFI (1 for `k ≤ MaxACT`). Each activation escapes
/// MINT's selection with probability `1 − 1/span` where `span` is the SAN
/// range (73 in the pre-transitive §V-D analysis that Fig 10 plots,
/// 74 for full MINT).
///
/// # Examples
///
/// ```
/// use mint_analysis::patterns::pattern2_min_trh;
/// use mint_analysis::{MinTrhSolver, TargetMttf};
///
/// let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
/// let k1 = pattern2_min_trh(&solver, 1, 73, 73);
/// let k73 = pattern2_min_trh(&solver, 73, 73, 73);
/// assert!(k1 < k73); // more rows, more chances of failure
/// ```
#[must_use]
pub fn pattern2_min_trh(solver: &MinTrhSolver, k: u32, max_act: u32, span: u32) -> u32 {
    assert!(
        k > 0 && max_act > 0 && span > 0,
        "parameters must be non-zero"
    );
    let sweep_refis = k.div_ceil(max_act);
    let hammers_per_refw = 8192 / sweep_refis;
    let template = SwModel {
        p_mitigation: 1.0 / f64::from(span),
        threshold_events: 1,
        events_per_refw: hammers_per_refw,
        refi_per_event: f64::from(sweep_refis),
        row_multiplier: f64::from(k),
    };
    solver.min_trh_sw(&template, 1, hammers_per_refw)
}

/// MinTRH of pattern-3 with `c` copies per row (Fig 11).
///
/// `k = max_act / c` rows are each activated `c` times per tREFI; the row is
/// selected by MINT with probability `c/span` per window, and failure needs
/// `ceil(T/c)` consecutive unselected windows.
#[must_use]
pub fn pattern3_min_trh(solver: &MinTrhSolver, copies: u32, max_act: u32, span: u32) -> u32 {
    assert!(
        copies >= 1 && copies <= max_act,
        "copies must be in 1..=max_act"
    );
    let k = max_act / copies; // rows that fit in one tREFI
    let p_window = f64::from(copies) / f64::from(span);
    if p_window >= 1.0 {
        // Guaranteed selection every window: the attack cannot even
        // complete one unmitigated window, so the tolerated threshold is
        // bounded by a single batch of activations.
        return copies;
    }
    let template = SwModel {
        p_mitigation: p_window,
        threshold_events: 1,
        events_per_refw: 8192,
        refi_per_event: 1.0,
        row_multiplier: f64::from(k.max(1)),
    };
    solver.min_trh_sw(&template, copies, 8192 * copies)
}

/// The full Fig 10 series: `(k, MinTRH)` for `k` in `1..=k_max`.
#[must_use]
pub fn fig10_series(solver: &MinTrhSolver, k_max: u32, max_act: u32, span: u32) -> Vec<(u32, u32)> {
    (1..=k_max)
        .map(|k| (k, pattern2_min_trh(solver, k, max_act, span)))
        .collect()
}

/// The full Fig 11 series: `(c, MinTRH)` for `c` in `1..=max_act`.
#[must_use]
pub fn fig11_series(solver: &MinTrhSolver, max_act: u32, span: u32) -> Vec<(u32, u32)> {
    (1..=max_act)
        .map(|c| (c, pattern3_min_trh(solver, c, max_act, span)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf::TargetMttf;

    fn solver() -> MinTrhSolver {
        MinTrhSolver::new(TargetMttf::paper_default(), 0.032)
    }

    #[test]
    fn fig10_shape_increases_then_decreases() {
        let s = solver();
        let k1 = pattern2_min_trh(&s, 1, 73, 73);
        let k73 = pattern2_min_trh(&s, 73, 73, 73);
        let k146 = pattern2_min_trh(&s, 146, 73, 73);
        assert!(k1 < k73, "{k1} !< {k73}");
        assert!(
            k146 < k73,
            "multi-tREFI must reduce MinTRH: {k146} !< {k73}"
        );
        // Paper values: 2461 (k=1), 2763 (k=73).
        assert!((2400..2540).contains(&k1), "{k1}");
        assert!((2690..2840).contains(&k73), "{k73}");
    }

    #[test]
    fn fig10_peak_at_k_73() {
        let series = fig10_series(&solver(), 100, 73, 73);
        let (peak_k, peak_v) = series.iter().copied().max_by_key(|&(_, v)| v).unwrap();
        assert_eq!(
            peak_k, 73,
            "peak must sit at k = MaxACT, got {peak_k} ({peak_v})"
        );
    }

    #[test]
    fn fig11_small_copies_within_half_percent() {
        // §V-D: c = 1..3 within 0.5% of pattern-2.
        let s = solver();
        let c1 = pattern3_min_trh(&s, 1, 73, 73);
        let c2 = pattern3_min_trh(&s, 2, 73, 73);
        let c3 = pattern3_min_trh(&s, 3, 73, 73);
        let base = c1 as f64;
        for (c, v) in [(2u32, c2), (3, c3)] {
            let rel = (v as f64 - base).abs() / base;
            assert!(rel < 0.02, "c={c}: {v} deviates {rel} from {c1}");
        }
    }

    #[test]
    fn fig11_collapses_for_many_copies() {
        let s = solver();
        let c1 = pattern3_min_trh(&s, 1, 73, 73);
        let c36 = pattern3_min_trh(&s, 36, 73, 73);
        let c73 = pattern3_min_trh(&s, 73, 73, 73);
        assert!(
            (c36 as f64) < 0.8 * c1 as f64,
            "c=36 should drop well below c=1: {c36} vs {c1}"
        );
        assert_eq!(c73, 73, "continuous hammering is always selected");
    }

    #[test]
    fn pattern3_c1_equals_pattern2_k73() {
        let s = solver();
        assert_eq!(
            pattern3_min_trh(&s, 1, 73, 73),
            pattern2_min_trh(&s, 73, 73, 73)
        );
    }

    #[test]
    fn transitive_span_74_gives_2800() {
        let t = pattern2_min_trh(&solver(), 73, 73, 74);
        assert!((2740..2870).contains(&t), "{t}");
    }

    #[test]
    #[should_panic(expected = "copies")]
    fn copies_out_of_range_rejected() {
        let _ = pattern3_min_trh(&solver(), 74, 73, 73);
    }
}
