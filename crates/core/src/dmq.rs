//! The Delayed Mitigation Queue (paper §VI): refresh-postponement support
//! for low-cost trackers.

use crate::{InDramTracker, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;

/// DMQ depth: DDR5 allows at most four postponed REFs, so at most four
/// pseudo-mitigations can be outstanding (§VI-C).
pub const DMQ_ENTRIES: usize = 4;

/// Wraps any low-cost tracker so that its mitigation window is counted in
/// *activations* instead of being synchronised to REF commands.
///
/// Mechanism (paper Fig 15):
///
/// * The wrapper counts activations since the last REF. When the count
///   exceeds the window size (`MaxACT`, 73), it resets to 1 and asks the
///   inner tracker for a **pseudo-mitigation**: the tracker's current
///   selection is popped into a 4-entry FIFO and a fresh window begins.
/// * On a real REF, if the FIFO holds anything, the *oldest* entry is
///   mitigated; otherwise the inner tracker operates exactly as without
///   postponement.
///
/// A selected row can wait in the FIFO for at most `4 × MaxACT = 292`
/// activations, so the tolerated threshold of the wrapped tracker rises by
/// at most 292 (146 double-sided) — the same penalty counter-based trackers
/// pay (§VI-D) — instead of collapsing entirely (§VI-B's deterministic 478K
/// activation attack).
///
/// # Examples
///
/// ```
/// use mint_core::{Dmq, InDramTracker, Mint, MintConfig};
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(5);
/// let mint = Mint::new(MintConfig::ddr5_default(), &mut rng);
/// let mut tracker = Dmq::new(mint, 73);
///
/// // Five tREFI worth of a single-sided attack with all REFs postponed:
/// for _ in 0..365 {
///     tracker.on_activation(RowId(9), &mut rng);
/// }
/// // The batch of five REFs arrives; the first pops the oldest selection.
/// let first = tracker.on_refresh(&mut rng);
/// assert!(first.mitigates(RowId(9)));
/// ```
#[derive(Debug, Clone)]
pub struct Dmq<T> {
    inner: T,
    queue: std::collections::VecDeque<MitigationDecision>,
    acts_since_ref: u32,
    window_acts: u32,
    depth: usize,
    /// Pseudo-mitigations dropped because the FIFO was full (only possible
    /// if the controller postpones more REFs than the FIFO depth covers).
    overflow_drops: u64,
}

impl<T: InDramTracker> Dmq<T> {
    /// Wraps `inner`, treating `window_acts` activations as one mitigation
    /// window (73 for the tREFI-synchronised default; the RFM threshold for
    /// MINT+RFM). The FIFO has the standard [`DMQ_ENTRIES`] depth.
    ///
    /// # Panics
    ///
    /// Panics if `window_acts == 0`.
    #[must_use]
    pub fn new(inner: T, window_acts: u32) -> Self {
        Self::with_depth(inner, window_acts, DMQ_ENTRIES)
    }

    /// Wraps `inner` with a custom FIFO depth (for the depth-ablation
    /// study; DDR5 needs 4 to cover the 4 postponable REFs).
    ///
    /// # Panics
    ///
    /// Panics if `window_acts == 0` or `depth == 0`.
    #[must_use]
    pub fn with_depth(inner: T, window_acts: u32, depth: usize) -> Self {
        assert!(window_acts > 0, "DMQ window must be non-zero");
        assert!(depth > 0, "DMQ needs at least one entry");
        Self {
            inner,
            queue: std::collections::VecDeque::with_capacity(depth),
            acts_since_ref: 0,
            window_acts,
            depth,
            overflow_drops: 0,
        }
    }

    /// The wrapped tracker.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Decisions currently waiting in the FIFO.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Pseudo-mitigations dropped due to FIFO overflow (spec violations).
    #[must_use]
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }

    fn enqueue(&mut self, decision: MitigationDecision) {
        // `None` decisions still occupy a REF's worth of mitigation budget
        // in hardware, but queueing them would pointlessly delay real
        // entries here, so only valid selections enter the FIFO.
        if decision.is_none() {
            return;
        }
        if self.queue.len() == self.depth {
            self.overflow_drops += 1;
            return;
        }
        self.queue.push_back(decision);
    }
}

impl<T: InDramTracker> InDramTracker for Dmq<T> {
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        self.acts_since_ref += 1;
        if self.acts_since_ref > self.window_acts {
            self.acts_since_ref = 1;
            let d = self.inner.pseudo_mitigate(rng);
            self.enqueue(d);
        }
        // Forward; RFM-style inners may still emit mid-window decisions.
        self.inner.on_activation(row, rng)
    }

    fn on_refresh(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        if let Some(oldest) = self.queue.pop_front() {
            return oldest;
        }
        self.acts_since_ref = 0;
        self.inner.on_refresh(rng)
    }

    fn pseudo_mitigate(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        // A DMQ inside a DMQ is not a meaningful hardware configuration, but
        // honour the contract: drain the oldest pending work.
        if let Some(oldest) = self.queue.pop_front() {
            return oldest;
        }
        self.inner.pseudo_mitigate(rng)
    }

    fn name(&self) -> &'static str {
        "DMQ"
    }

    fn live_entries(&self) -> usize {
        self.inner.live_entries() + self.queue.len()
    }

    fn overflow_count(&self) -> u64 {
        self.inner.overflow_count() + self.overflow_drops
    }

    fn entries(&self) -> usize {
        self.inner.entries() + self.depth
    }

    /// Inner storage + FIFO entries of 19 bits each (18-bit row +
    /// transitive flag), per §VIII-C.
    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits() + (self.depth as u64) * 19
    }

    fn reset(&mut self, rng: &mut dyn Rng64) {
        self.queue.clear();
        self.acts_since_ref = 0;
        self.overflow_drops = 0;
        self.inner.reset(rng);
    }

    /// `[acts_since_ref, overflow_drops, queue_len, queue…, inner…]` —
    /// each queued decision in its three-word encoding, inner state last.
    fn snapshot_state(&self) -> Vec<u64> {
        let mut words = vec![
            u64::from(self.acts_since_ref),
            self.overflow_drops,
            self.queue.len() as u64,
        ];
        for d in &self.queue {
            words.extend(d.encode());
        }
        words.extend(self.inner.snapshot_state());
        words
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let truncated = || "DMQ: truncated state".to_string();
        let (&acts, rest) = state.split_first().ok_or_else(truncated)?;
        let (&drops, rest) = rest.split_first().ok_or_else(truncated)?;
        let (&qlen, mut rest) = rest.split_first().ok_or_else(truncated)?;
        let qlen = usize::try_from(qlen).map_err(|_| "DMQ: queue length overflow".to_string())?;
        if qlen > self.depth {
            return Err(format!("DMQ: {qlen} queued exceeds depth {}", self.depth));
        }
        self.acts_since_ref =
            u32::try_from(acts).map_err(|_| format!("DMQ: acts_since_ref {acts} exceeds u32"))?;
        self.overflow_drops = drops;
        self.queue.clear();
        for _ in 0..qlen {
            let (chunk, tail) = rest.split_first_chunk::<3>().ok_or_else(truncated)?;
            self.queue.push_back(MitigationDecision::decode(*chunk)?);
            rest = tail;
        }
        self.inner.restore_state(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mint, MintConfig};
    use mint_rng::Xoshiro256StarStar;

    fn mint_dmq(seed: u64) -> (Dmq<Mint>, Xoshiro256StarStar) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mint = Mint::new(cfg, &mut rng);
        (Dmq::new(mint, 73), rng)
    }

    #[test]
    fn timely_refresh_behaves_like_bare_tracker() {
        let (mut dmq, mut rng) = mint_dmq(1);
        for _ in 0..200 {
            for _ in 0..73 {
                dmq.on_activation(RowId(4), &mut rng);
            }
            assert!(dmq.on_refresh(&mut rng).mitigates(RowId(4)));
            assert_eq!(dmq.queued(), 0);
        }
    }

    #[test]
    fn postponed_batch_drains_fifo_in_order() {
        let (mut dmq, mut rng) = mint_dmq(2);
        // Five windows hammering five distinct rows; REFs all postponed.
        for w in 0..5u32 {
            for _ in 0..73 {
                dmq.on_activation(RowId(100 + w), &mut rng);
            }
        }
        // Pseudo-mitigations fired at the start of windows 2..5.
        assert_eq!(dmq.queued(), 4);
        // The batch of five REFs: first four pop the FIFO in FIFO order...
        for w in 0..4u32 {
            let d = dmq.on_refresh(&mut rng);
            assert!(
                d.mitigates(RowId(100 + w)),
                "REF {w} should mitigate its window's row, got {d:?}"
            );
        }
        // ...and the fifth drains the live window.
        let d = dmq.on_refresh(&mut rng);
        assert!(d.mitigates(RowId(104)));
        assert_eq!(dmq.queued(), 0);
    }

    #[test]
    fn deterministic_postponement_attack_is_foiled() {
        // §VI-B attack: 73 decoy ACTs, then 292 ACTs on the victim row.
        // Without DMQ the victim row is invisible; with DMQ the windows roll
        // over and the attack row is guaranteed selection in windows it
        // fully occupies.
        let (mut dmq, mut rng) = mint_dmq(3);
        let mut attack_mitigations = 0;
        for _ in 0..100 {
            for d in 0..73u32 {
                dmq.on_activation(RowId(2_000 + d), &mut rng);
            }
            for _ in 0..292 {
                dmq.on_activation(RowId(666), &mut rng);
            }
            for _ in 0..5 {
                if dmq.on_refresh(&mut rng).mitigates(RowId(666)) {
                    attack_mitigations += 1;
                }
            }
        }
        // The attack row fully occupies windows 2..4 (selection guaranteed)
        //plus the scraps of window 5 — at least 3 mitigations per burst.
        assert!(
            attack_mitigations >= 300,
            "attack row must be mitigated under DMQ, got {attack_mitigations}"
        );
    }

    #[test]
    fn fifo_overflow_is_counted_not_fatal() {
        let (mut dmq, mut rng) = mint_dmq(4);
        // 7 windows without any REF: 6 pseudo-mitigations, 2 dropped.
        for w in 0..7u32 {
            for _ in 0..73 {
                dmq.on_activation(RowId(10 + w), &mut rng);
            }
        }
        assert_eq!(dmq.queued(), DMQ_ENTRIES);
        assert_eq!(dmq.overflow_drops(), 2);
    }

    #[test]
    fn none_selections_do_not_clog_the_fifo() {
        let (mut dmq, mut rng) = mint_dmq(5);
        // Sparse traffic: one ACT per tREFI, timely REFs. Selections are
        // rare (p = 1/73) and the FIFO must not fill with `None`s.
        for w in 0..1000u32 {
            dmq.on_activation(RowId(w % 7), &mut rng);
            let _ = dmq.on_refresh(&mut rng);
            assert_eq!(dmq.queued(), 0, "FIFO should stay empty under timely REF");
        }
    }

    #[test]
    fn delay_bound_is_four_windows() {
        // A row selected at the start of window 1 waits at most 4 × 73 ACTs.
        let (mut dmq, mut rng) = mint_dmq(6);
        let mut max_wait = 0u32;
        for _ in 0..50 {
            let mut wait = 0u32;
            let mut selected_at: Option<u32> = None;
            let mut acts = 0u32;
            for w in 0..5u32 {
                for _ in 0..73 {
                    dmq.on_activation(RowId(31_337), &mut rng);
                    acts += 1;
                    if selected_at.is_none() && dmq.inner().sar() == Some(RowId(31_337)) {
                        selected_at = Some(acts);
                    }
                }
                let _ = w;
            }
            for _ in 0..5 {
                let d = dmq.on_refresh(&mut rng);
                if d.mitigates(RowId(31_337)) {
                    if let Some(s) = selected_at {
                        wait = acts.saturating_sub(s);
                    }
                    break;
                }
            }
            max_wait = max_wait.max(wait);
        }
        assert!(max_wait <= 4 * 73 + 73, "wait {max_wait} exceeds DMQ bound");
    }

    #[test]
    fn storage_accounting_matches_paper() {
        let (dmq, _) = mint_dmq(7);
        // 32 bits MINT + 76 bits DMQ = 108 bits = 13.5 bytes < 15 bytes.
        assert_eq!(dmq.storage_bits(), 32 + 76);
        assert_eq!(dmq.entries(), 5);
    }

    #[test]
    fn reset_clears_queue_and_counters() {
        let (mut dmq, mut rng) = mint_dmq(8);
        for _ in 0..200 {
            dmq.on_activation(RowId(1), &mut rng);
        }
        dmq.reset(&mut rng);
        assert_eq!(dmq.queued(), 0);
        assert_eq!(dmq.overflow_drops(), 0);
    }
}
