//! Row-Press tolerance via ImPress-style equivalent activations
//! (paper Appendix C).

use crate::{InDramTracker, MintConfig, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;

/// Fractional bits of the fixed-point CAN register (Appendix C: "EACT can
/// have up to 7 bits of fractional part").
pub const EACT_FRAC_BITS: u32 = 7;

/// Computes the ImPress *equivalent activation count* for an activation that
/// kept its row open for `t_on_ns`, as a fixed-point value with
/// [`EACT_FRAC_BITS`] fractional bits:
///
/// `EACT = (tON + tPRE) / tRC`   (paper Eq. 9)
///
/// A minimum of one full activation is enforced (a normal closed-page ACT
/// has `tON = tRAS`, giving EACT = 1.0).
///
/// # Panics
///
/// Panics if `t_rc_ns <= 0`.
///
/// # Examples
///
/// ```
/// use mint_core::{eact_fixed_point, EACT_FRAC_BITS};
/// // Row held open for 3 tREFI (Row-Press): many equivalent ACTs.
/// let e = eact_fixed_point(3.0 * 3900.0, 16.0, 48.0);
/// assert_eq!(e >> EACT_FRAC_BITS, 244); // (11700 + 16) / 48 ≈ 244.08
/// ```
#[must_use]
pub fn eact_fixed_point(t_on_ns: f64, t_pre_ns: f64, t_rc_ns: f64) -> u64 {
    assert!(t_rc_ns > 0.0, "tRC must be positive");
    let eact = (t_on_ns + t_pre_ns) / t_rc_ns;
    let fp = (eact * f64::from(1u32 << EACT_FRAC_BITS)).round() as u64;
    fp.max(1 << EACT_FRAC_BITS)
}

/// MINT with a fixed-point CAN register, tolerating Row-Press (Appendix C).
///
/// Rows held open for long periods leak charge from their neighbours just
/// like extra activations would (the Row-Press effect). ImPress converts
/// open time into an equivalent activation count, and MINT accommodates it
/// by widening CAN to a 7+7-bit fixed-point register incremented by EACT per
/// activation; the row is latched when CAN *crosses* SAN. Rows kept open
/// longer are therefore proportionally more likely to be selected for
/// mitigation, which is exactly the property the defence needs.
///
/// # Examples
///
/// ```
/// use mint_core::{InDramTracker, MintConfig, RowPressMint};
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(21);
/// let mut t = RowPressMint::new(MintConfig::ddr5_default(), 48.0, 16.0, &mut rng);
/// // A row held open for one tREFI consumes ~81 slots of the window: it is
/// // overwhelmingly likely to be selected.
/// let mut hits = 0;
/// for _ in 0..1000 {
///     t.on_activation_open(RowId(7), 3900.0, &mut rng);
///     if t.on_refresh(&mut rng).mitigates(RowId(7)) {
///         hits += 1;
///     }
/// }
/// assert!(hits > 900);
/// ```
#[derive(Debug, Clone)]
pub struct RowPressMint {
    config: MintConfig,
    t_rc_ns: f64,
    t_pre_ns: f64,
    /// SAN in fixed point (slot number << EACT_FRAC_BITS).
    san_fp: u64,
    /// Whether the current window is a transitive one (SAN = 0 draw).
    transitive_window: bool,
    transitive_distance: u32,
    can_fp: u64,
    sar: Option<RowId>,
}

impl RowPressMint {
    /// Creates the tracker. `t_rc_ns` and `t_pre_ns` are the device's row
    /// cycle and precharge times used in the EACT conversion.
    #[must_use]
    pub fn new(config: MintConfig, t_rc_ns: f64, t_pre_ns: f64, rng: &mut dyn Rng64) -> Self {
        let mut t = Self {
            config,
            t_rc_ns,
            t_pre_ns,
            san_fp: 0,
            transitive_window: false,
            transitive_distance: 0,
            can_fp: 0,
            sar: None,
        };
        t.begin_window(rng);
        t
    }

    /// Observes an activation that kept the row open for `t_on_ns`
    /// nanoseconds, charging it `EACT` window slots.
    pub fn on_activation_open(&mut self, row: RowId, t_on_ns: f64, _rng: &mut dyn Rng64) {
        let eact = eact_fixed_point(t_on_ns, self.t_pre_ns, self.t_rc_ns);
        let prev = self.can_fp;
        self.can_fp = self.can_fp.saturating_add(eact);
        // Latch when CAN crosses SAN (Appendix C). A transitive window has
        // SAN = 0, which no crossing can reach since CAN starts at 0 and the
        // crossing must come from strictly below.
        if !self.transitive_window && prev < self.san_fp && self.can_fp >= self.san_fp {
            self.sar = Some(row);
        }
    }

    /// Current fixed-point CAN value.
    #[must_use]
    pub fn can_fp(&self) -> u64 {
        self.can_fp
    }

    /// The row currently latched for mitigation, if any.
    #[must_use]
    pub fn sar(&self) -> Option<RowId> {
        self.sar
    }

    fn begin_window(&mut self, rng: &mut dyn Rng64) {
        let span = self.config.selection_span();
        let slot = if self.config.transitive {
            rng.gen_range_u32(span)
        } else {
            1 + rng.gen_range_u32(span)
        };
        if slot == 0 {
            self.transitive_window = true;
            self.transitive_distance += 1;
        } else {
            self.transitive_window = false;
            self.transitive_distance = 0;
            self.sar = None;
        }
        self.san_fp = u64::from(slot) << EACT_FRAC_BITS;
        self.can_fp = 0;
    }
}

impl InDramTracker for RowPressMint {
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        // A closed-page ACT: tON = tRC − tPRE, i.e. exactly one slot.
        self.on_activation_open(row, self.t_rc_ns - self.t_pre_ns, rng);
        None
    }

    fn on_refresh(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        let decision = match self.sar {
            None => MitigationDecision::None,
            Some(row) if self.transitive_window => MitigationDecision::Transitive {
                around: row,
                distance: self.transitive_distance,
            },
            Some(row) => MitigationDecision::Aggressor(row),
        };
        self.begin_window(rng);
        decision
    }

    fn name(&self) -> &'static str {
        "MINT+ImPress"
    }

    fn live_entries(&self) -> usize {
        usize::from(self.sar().is_some())
    }

    fn entries(&self) -> usize {
        1
    }

    /// CAN widens from 7 to 14 bits (Appendix C): 32 + 7 = 39 bits.
    fn storage_bits(&self) -> u64 {
        39
    }

    fn reset(&mut self, rng: &mut dyn Rng64) {
        self.sar = None;
        self.transitive_distance = 0;
        self.transitive_window = false;
        self.begin_window(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn tracker(seed: u64) -> (RowPressMint, Xoshiro256StarStar) {
        let mut r = rng(seed);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let t = RowPressMint::new(cfg, 48.0, 16.0, &mut r);
        (t, r)
    }

    #[test]
    fn eact_of_normal_act_is_one() {
        // tON = tRC − tPRE → EACT = 1.0 exactly.
        assert_eq!(eact_fixed_point(32.0, 16.0, 48.0), 1 << EACT_FRAC_BITS);
    }

    #[test]
    fn eact_minimum_is_one() {
        assert_eq!(eact_fixed_point(1.0, 1.0, 48.0), 1 << EACT_FRAC_BITS);
    }

    #[test]
    fn eact_scales_with_open_time() {
        let one = eact_fixed_point(32.0, 16.0, 48.0);
        let ten = eact_fixed_point(464.0, 16.0, 48.0); // (464+16)/48 = 10
        assert_eq!(ten, 10 * one);
    }

    #[test]
    #[should_panic(expected = "tRC must be positive")]
    fn eact_rejects_bad_trc() {
        let _ = eact_fixed_point(10.0, 10.0, 0.0);
    }

    #[test]
    fn closed_page_behaviour_matches_plain_mint_statistics() {
        // With EACT = 1 per ACT, selection probability of a full window is 1.
        let (mut t, mut r) = tracker(1);
        for _ in 0..200 {
            for _ in 0..73 {
                t.on_activation(RowId(5), &mut r);
            }
            assert!(t.on_refresh(&mut r).mitigates(RowId(5)));
        }
    }

    #[test]
    fn long_open_time_raises_selection_probability() {
        // One activation holding the row open for half a tREFI covers ~40
        // slots: selection probability ≈ 40/73 ≫ 1/73.
        let (mut t, mut r) = tracker(2);
        let trials = 4000;
        let mut hits = 0;
        for _ in 0..trials {
            t.on_activation_open(RowId(9), 1950.0, &mut r); // (1950+16)/48 ≈ 41
            if t.on_refresh(&mut r).mitigates(RowId(9)) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        assert!((rate - 41.0 / 73.0).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn crossing_latches_the_crossing_row() {
        // Deterministic scenario: find a window with SAN >= 10, send 9 unit
        // ACTs of decoys then one big EACT activation that crosses SAN.
        let (mut t, mut r) = tracker(3);
        loop {
            if t.san_fp >> EACT_FRAC_BITS >= 10 {
                break;
            }
            t.on_refresh(&mut r);
        }
        for i in 0..9 {
            t.on_activation(RowId(100 + i), &mut r);
        }
        assert_eq!(t.sar(), None);
        t.on_activation_open(RowId(77), 3900.0, &mut r); // crosses any SAN ≤ 82
        assert_eq!(t.sar(), Some(RowId(77)));
    }

    #[test]
    fn storage_is_39_bits() {
        let (t, _) = tracker(4);
        assert_eq!(t.storage_bits(), 39);
        assert_eq!(t.entries(), 1);
    }

    #[test]
    fn reset_clears_accumulator() {
        let (mut t, mut r) = tracker(5);
        t.on_activation_open(RowId(1), 3900.0, &mut r);
        t.reset(&mut r);
        assert_eq!(t.can_fp(), 0);
        assert_eq!(t.sar(), None);
    }
}
