//! MINT configuration.

use mint_dram::{MitigationRate, SecurityParams};

/// Configuration of a [`Mint`](crate::Mint) tracker.
///
/// The only hardware parameters MINT has are the number of activation slots
/// in its mitigation window (`MaxACT` = 73 for the DDR5 default, or the RFM
/// threshold for MINT+RFM) and whether slot 0 performs transitive mitigation
/// (§V-E; on by default, as the paper's final design requires it for
/// Half-Double protection).
///
/// # Examples
///
/// ```
/// use mint_core::MintConfig;
/// let c = MintConfig::ddr5_default();
/// assert_eq!(c.window_slots, 73);
/// assert!(c.transitive);
/// assert_eq!(c.selection_span(), 74); // URAND over 0..=73
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MintConfig {
    /// Activation slots per mitigation window (`M` in the paper).
    pub window_slots: u32,
    /// Whether slot 0 triggers transitive mitigation of the last SAR row.
    pub transitive: bool,
}

impl MintConfig {
    /// The paper's default: 73 slots + the transitive slot (§V-E).
    #[must_use]
    pub fn ddr5_default() -> Self {
        Self {
            window_slots: 73,
            transitive: true,
        }
    }

    /// MINT as first introduced in §V-A/B, without the transitive slot
    /// (URAND over `1..=M`). Used to reproduce the 2763 → 2800 MinTRH step.
    #[must_use]
    pub fn without_transitive(mut self) -> Self {
        self.transitive = false;
        self
    }

    /// MINT co-designed with RFM (§VII): the window is the RFM threshold
    /// (32 → ≈2× rate, 16 → ≈4×).
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th == 0`.
    #[must_use]
    pub fn rfm(rfm_th: u32) -> Self {
        assert!(rfm_th > 0, "RFM threshold must be non-zero");
        Self {
            window_slots: rfm_th,
            transitive: true,
        }
    }

    /// Half-rate MINT (one mitigation per two tREFI, Table V row 1).
    #[must_use]
    pub fn half_rate() -> Self {
        Self {
            window_slots: 146,
            transitive: true,
        }
    }

    /// Derives the window size from full device security parameters.
    #[must_use]
    pub fn from_params(p: &SecurityParams) -> Self {
        Self {
            window_slots: p.window_slots(),
            transitive: true,
        }
    }

    /// Number of distinct SAN values: `window_slots + 1` with the transitive
    /// slot, else `window_slots`. The per-activation selection probability is
    /// `1 / selection_span()` (1/74 for the default — this is the `p` used
    /// throughout the security analysis).
    #[must_use]
    pub fn selection_span(&self) -> u32 {
        self.window_slots + u32::from(self.transitive)
    }

    /// The corresponding device-level mitigation rate descriptor.
    #[must_use]
    pub fn mitigation_rate(&self, max_act: u32) -> MitigationRate {
        if self.window_slots == max_act {
            MitigationRate::OnePerRefi
        } else if self.window_slots == 2 * max_act {
            MitigationRate::OnePerTwoRefi
        } else {
            MitigationRate::PerActivations(self.window_slots)
        }
    }
}

impl Default for MintConfig {
    fn default() -> Self {
        Self::ddr5_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = MintConfig::default();
        assert_eq!(c.window_slots, 73);
        assert_eq!(c.selection_span(), 74);
    }

    #[test]
    fn without_transitive_spans_m() {
        let c = MintConfig::ddr5_default().without_transitive();
        assert_eq!(c.selection_span(), 73);
    }

    #[test]
    fn rfm_configs() {
        assert_eq!(MintConfig::rfm(32).selection_span(), 33);
        assert_eq!(MintConfig::rfm(16).selection_span(), 17);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rfm_zero_rejected() {
        let _ = MintConfig::rfm(0);
    }

    #[test]
    fn half_rate_spans_147() {
        assert_eq!(MintConfig::half_rate().selection_span(), 147);
    }

    #[test]
    fn rate_descriptor_round_trip() {
        use mint_dram::MitigationRate;
        assert_eq!(
            MintConfig::ddr5_default().mitigation_rate(73),
            MitigationRate::OnePerRefi
        );
        assert_eq!(
            MintConfig::half_rate().mitigation_rate(73),
            MitigationRate::OnePerTwoRefi
        );
        assert_eq!(
            MintConfig::rfm(32).mitigation_rate(73),
            MitigationRate::PerActivations(32)
        );
    }

    #[test]
    fn from_params_uses_window() {
        use mint_dram::{MitigationRate, SecurityParams};
        let p = SecurityParams::ddr5_default().with_rate(MitigationRate::PerActivations(16));
        assert_eq!(MintConfig::from_params(&p).window_slots, 16);
    }
}
