//! MINT co-designed with DDR5 Refresh Management (paper §VII).

use crate::{InDramTracker, Mint, MintConfig, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;

/// MINT+RFM: the memory controller issues an RFM command every `rfm_th`
/// activations (its per-bank Rolling Accumulation of ACTs counter crossing
/// the threshold), giving the device an extra mitigation opportunity.
///
/// MINT adapts by drawing its SAN over `URAND(0, rfm_th)` — the mitigation
/// window shrinks from 73 activations to 32 (RFM32, ≈2× rate) or 16
/// (RFM16, ≈4× rate), scaling the tolerated threshold down proportionally
/// (Table V: MinTRH-D 1482 → 689 → 356).
///
/// Because RFM commands may themselves be delayed by the controller, the
/// tracker supports an optional DMQ-style delay FIFO
/// ([`with_delay`](Self::with_delay)): selections pass through up to four
/// window-sized delays before being mitigated, matching the paper's
/// "MINT+RFM with DMQ" evaluation.
///
/// # Examples
///
/// ```
/// use mint_core::{InDramTracker, MintRfm};
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(8);
/// let mut t = MintRfm::new(32, &mut rng);
/// let mut mitigations = 0;
/// for _ in 0..73 {
///     if t.on_activation(RowId(5), &mut rng).is_some() {
///         mitigations += 1; // an RFM fired mid-tREFI
///     }
/// }
/// assert_eq!(mitigations, 2); // 73 / 32 = 2 RFM commands per tREFI
/// ```
#[derive(Debug, Clone)]
pub struct MintRfm {
    mint: Mint,
    rfm_th: u32,
    acts_in_window: u32,
    delay_windows: usize,
    delay_queue: std::collections::VecDeque<MitigationDecision>,
}

impl MintRfm {
    /// Creates MINT+RFM with the given RFM threshold (32 or 16 in the
    /// paper) and no RFM delay.
    ///
    /// # Panics
    ///
    /// Panics if `rfm_th == 0`.
    #[must_use]
    pub fn new(rfm_th: u32, rng: &mut dyn Rng64) -> Self {
        Self {
            mint: Mint::new(MintConfig::rfm(rfm_th), rng),
            rfm_th,
            acts_in_window: 0,
            delay_windows: 0,
            delay_queue: std::collections::VecDeque::new(),
        }
    }

    /// Adds a DMQ-style delay: selections are mitigated `windows` mitigation
    /// windows after being made (clamped to the DMQ depth of 4).
    #[must_use]
    pub fn with_delay(mut self, windows: usize) -> Self {
        self.delay_windows = windows.min(crate::DMQ_ENTRIES);
        self
    }

    /// The RFM threshold.
    #[must_use]
    pub fn rfm_th(&self) -> u32 {
        self.rfm_th
    }

    /// The inner MINT tracker.
    #[must_use]
    pub fn mint(&self) -> &Mint {
        &self.mint
    }

    /// Ends the current window and routes its selection through the delay
    /// FIFO, returning whatever is due for mitigation now.
    fn rotate_window(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        let fresh = self.mint.on_refresh(rng);
        if self.delay_windows == 0 {
            return fresh;
        }
        self.delay_queue.push_back(fresh);
        if self.delay_queue.len() > self.delay_windows {
            self.delay_queue
                .pop_front()
                .unwrap_or(MitigationDecision::None)
        } else {
            MitigationDecision::None
        }
    }
}

impl InDramTracker for MintRfm {
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        self.mint.on_activation(row, rng);
        self.acts_in_window += 1;
        if self.acts_in_window >= self.rfm_th {
            self.acts_in_window = 0;
            Some(self.rotate_window(rng))
        } else {
            None
        }
    }

    fn on_refresh(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        // A REF is also a mitigation opportunity: drain delayed work first,
        // else end the (possibly partial) window.
        if let Some(oldest) = self.delay_queue.pop_front() {
            return oldest;
        }
        self.acts_in_window = 0;
        self.mint.on_refresh(rng)
    }

    fn name(&self) -> &'static str {
        "MINT+RFM"
    }

    fn live_entries(&self) -> usize {
        self.mint.live_entries()
    }

    fn entries(&self) -> usize {
        1
    }

    /// MINT registers plus the delay FIFO (19 bits per slot when enabled).
    fn storage_bits(&self) -> u64 {
        32 + (self.delay_windows as u64) * 19
    }

    fn reset(&mut self, rng: &mut dyn Rng64) {
        self.acts_in_window = 0;
        self.delay_queue.clear();
        self.mint.reset(rng);
    }

    /// `[acts_in_window, queue_len, queue…, mint…]` — each delayed decision
    /// in its three-word encoding, the inner MINT registers last.
    fn snapshot_state(&self) -> Vec<u64> {
        let mut words = vec![
            u64::from(self.acts_in_window),
            self.delay_queue.len() as u64,
        ];
        for d in &self.delay_queue {
            words.extend(d.encode());
        }
        words.extend(self.mint.snapshot_state());
        words
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let truncated = || "MINT+RFM: truncated state".to_string();
        let (&acts, rest) = state.split_first().ok_or_else(truncated)?;
        let (&qlen, mut rest) = rest.split_first().ok_or_else(truncated)?;
        let qlen =
            usize::try_from(qlen).map_err(|_| "MINT+RFM: queue length overflow".to_string())?;
        if qlen > crate::DMQ_ENTRIES {
            return Err(format!("MINT+RFM: {qlen} delayed exceeds the DMQ depth"));
        }
        self.acts_in_window = u32::try_from(acts)
            .map_err(|_| format!("MINT+RFM: acts_in_window {acts} exceeds u32"))?;
        self.delay_queue.clear();
        for _ in 0..qlen {
            let (chunk, tail) = rest.split_first_chunk::<3>().ok_or_else(truncated)?;
            self.delay_queue
                .push_back(MitigationDecision::decode(*chunk)?);
            rest = tail;
        }
        self.mint.restore_state(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn rfm32_fires_twice_per_trefi() {
        let mut r = rng(1);
        let mut t = MintRfm::new(32, &mut r);
        let mut fired = 0;
        for _ in 0..73 {
            if t.on_activation(RowId(1), &mut r).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 2);
        let _ = t.on_refresh(&mut r);
    }

    #[test]
    fn rfm16_fires_four_times_per_trefi() {
        let mut r = rng(2);
        let mut t = MintRfm::new(16, &mut r);
        let fired = (0..73)
            .filter(|_| t.on_activation(RowId(1), &mut r).is_some())
            .count();
        assert_eq!(fired, 4);
    }

    #[test]
    fn full_window_guarantees_selection() {
        let mut r = rng(3);
        let mut t = MintRfm::new(16, &mut r);
        let mut decisions = Vec::new();
        for _ in 0..160 {
            if let Some(d) = t.on_activation(RowId(50), &mut r) {
                decisions.push(d);
            }
        }
        assert_eq!(decisions.len(), 10);
        // Every full window selects row 50 (or fires a transitive around it).
        for d in decisions {
            match d {
                MitigationDecision::Aggressor(row) => assert_eq!(row, RowId(50)),
                MitigationDecision::Transitive { around, .. } => assert_eq!(around, RowId(50)),
                MitigationDecision::None => {
                    // Possible only for a transitive draw before any
                    // selection existed — the very first window.
                }
                other => panic!("unexpected decision {other:?}"),
            }
        }
    }

    #[test]
    fn selection_probability_is_one_over_span() {
        let mut r = rng(4);
        let mut t = MintRfm::new(32, &mut r);
        let trials = 60_000u32;
        let mut hits = 0u32;
        // Attack row occupies exactly one of the 32 slots per window; the
        // boundary decision fires on the window's last activation.
        for _ in 0..trials {
            t.on_activation(RowId(9), &mut r);
            let mut boundary = MitigationDecision::None;
            for i in 1..32 {
                if let Some(d) = t.on_activation(RowId(100 + i), &mut r) {
                    boundary = d;
                }
            }
            if boundary.mitigates(RowId(9)) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials);
        let expect = 1.0 / 33.0;
        assert!((rate - expect).abs() < 3e-3, "rate {rate} vs {expect}");
    }

    #[test]
    fn delayed_rfm_buffers_selections() {
        let mut r = rng(5);
        let mut t = MintRfm::new(16, &mut r).with_delay(2);
        let mut emitted = Vec::new();
        for w in 0..6u32 {
            for _ in 0..16 {
                if let Some(d) = t.on_activation(RowId(w), &mut r) {
                    emitted.push((w, d));
                }
            }
        }
        assert_eq!(emitted.len(), 6);
        // First two boundaries emit None (filling the delay pipe).
        assert!(emitted[0].1.is_none());
        assert!(emitted[1].1.is_none());
        // Boundary of window w emits the selection of window w-2.
        for (w, d) in &emitted[2..] {
            match d {
                MitigationDecision::Aggressor(row) => assert_eq!(*row, RowId(w - 2)),
                MitigationDecision::Transitive { around, .. } => {
                    assert_eq!(*around, RowId(w - 2));
                }
                MitigationDecision::None => {}
                other => panic!("unexpected decision {other:?}"),
            }
        }
    }

    #[test]
    fn refresh_drains_delay_queue_first() {
        let mut r = rng(6);
        let mut t = MintRfm::new(16, &mut r).with_delay(4);
        for w in 0..3u32 {
            for _ in 0..16 {
                let _ = t.on_activation(RowId(w), &mut r);
            }
        }
        // Three selections are parked; a REF must release the oldest.
        let d = t.on_refresh(&mut r);
        match d {
            MitigationDecision::Aggressor(row) => assert_eq!(row, RowId(0)),
            MitigationDecision::Transitive { around, .. } => assert_eq!(around, RowId(0)),
            other => panic!("expected the oldest delayed selection, got {other:?}"),
        }
    }

    #[test]
    fn delay_clamped_to_dmq_depth() {
        let mut r = rng(7);
        let t = MintRfm::new(16, &mut r).with_delay(99);
        assert_eq!(t.storage_bits(), 32 + 4 * 19);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut r = rng(8);
        let mut t = MintRfm::new(32, &mut r).with_delay(1);
        for _ in 0..100 {
            let _ = t.on_activation(RowId(3), &mut r);
        }
        t.reset(&mut r);
        assert_eq!(t.mint().can(), 0);
        assert!(t.on_activation(RowId(3), &mut r).is_none());
    }
}
