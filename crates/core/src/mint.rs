//! The Minimalist In-DRAM Tracker (paper §V).

use crate::{InDramTracker, MintConfig, MitigationDecision};
use mint_dram::RowId;
use mint_rng::Rng64;

/// MINT: a future-centric, single-entry Rowhammer tracker.
///
/// State is exactly the three registers of paper Fig 9:
///
/// * **SAN** (Selected Activation Number, 7 bits) — drawn uniformly at each
///   REF over the slots of the *upcoming* window (`0..=M` with the
///   transitive slot, `1..=M` without). Decided *before* the addresses of
///   the upcoming interval are known — this is what makes MINT
///   "future-centric" and gives every activation position an identical
///   mitigation probability.
/// * **CAN** (Current Activation Number, 7 bits) — sequence number of each
///   activation within the window.
/// * **SAR** (Selected Address Register, 18 bits + valid) — latched with the
///   activated row when `CAN == SAN`; mitigated at the next REF.
///
/// When the transitive slot is enabled and SAN = 0 is drawn, SAR is
/// *preserved* across the REF and the next refresh performs a transitive
/// mitigation around it (victims-of-victims); consecutive zero draws recurse
/// to larger distances (§V-E).
///
/// # Examples
///
/// Uniform selection: the probability that any given slot is chosen is
/// exactly `1/selection_span` regardless of position — unlike InDRAM-PARA
/// (paper §III).
///
/// ```
/// use mint_core::{InDramTracker, Mint, MintConfig};
/// use mint_dram::RowId;
/// use mint_rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(3);
/// let mut mint = Mint::new(MintConfig::ddr5_default(), &mut rng);
/// let mut hits = 0u32;
/// let trials = 50_000;
/// for _ in 0..trials {
///     // Attack row appears only at position 1 of the window.
///     mint.on_activation(RowId(7), &mut rng);
///     for _ in 1..73 {
///         mint.on_activation(RowId(9999), &mut rng);
///     }
///     if mint.on_refresh(&mut rng).mitigates(RowId(7)) {
///         hits += 1;
///     }
/// }
/// let rate = f64::from(hits) / f64::from(trials);
/// assert!((rate - 1.0 / 74.0).abs() < 3e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Mint {
    config: MintConfig,
    san: u32,
    can: u32,
    sar: Option<RowId>,
    /// Non-zero when the *current* window was opened by a SAN = 0 draw:
    /// SAR holds the row around which a transitive mitigation fires at the
    /// next REF, at this distance.
    transitive_distance: u32,
}

impl Mint {
    /// Creates a MINT tracker and draws the SAN for its first window.
    #[must_use]
    pub fn new(config: MintConfig, rng: &mut dyn Rng64) -> Self {
        let mut mint = Self {
            config,
            san: 1,
            can: 0,
            sar: None,
            transitive_distance: 0,
        };
        mint.begin_window(rng);
        mint
    }

    /// The tracker's configuration.
    #[must_use]
    pub fn config(&self) -> &MintConfig {
        &self.config
    }

    /// Current Selected Activation Number (0 means a transitive window).
    #[must_use]
    pub fn san(&self) -> u32 {
        self.san
    }

    /// Current Activation Number (activations observed this window).
    #[must_use]
    pub fn can(&self) -> u32 {
        self.can
    }

    /// The row currently latched for mitigation, if any.
    #[must_use]
    pub fn sar(&self) -> Option<RowId> {
        self.sar
    }

    /// Discards the current window and starts a fresh one: CAN ← 0, a new
    /// SAN is drawn, and — unless the fresh draw is the transitive slot —
    /// SAR is invalidated.
    ///
    /// This is the tail half of [`on_refresh`](InDramTracker::on_refresh),
    /// exposed for tests and for embedding MINT in custom schedulers.
    pub fn begin_window(&mut self, rng: &mut dyn Rng64) {
        let span = self.config.selection_span();
        let new_san = if self.config.transitive {
            rng.gen_range_u32(span) // 0..=M, 0 = transitive
        } else {
            1 + rng.gen_range_u32(span) // 1..=M
        };
        if new_san == 0 {
            // Transitive window: SAR is preserved; recursion deepens if the
            // previous window was already transitive (§V-E).
            self.transitive_distance += 1;
        } else {
            self.transitive_distance = 0;
            self.sar = None;
        }
        self.san = new_san;
        self.can = 0;
    }

    /// Reports the decision owed at a refresh opportunity *without* starting
    /// a new window.
    fn current_decision(&self) -> MitigationDecision {
        match self.sar {
            None => MitigationDecision::None,
            Some(row) => {
                if self.transitive_distance > 0 {
                    MitigationDecision::Transitive {
                        around: row,
                        distance: self.transitive_distance,
                    }
                } else {
                    MitigationDecision::Aggressor(row)
                }
            }
        }
    }
}

impl InDramTracker for Mint {
    fn on_activation(&mut self, row: RowId, _rng: &mut dyn Rng64) -> Option<MitigationDecision> {
        // CAN saturates at the window size; activations beyond MaxACT
        // (possible only under refresh postponement without a DMQ) are
        // invisible to the selection logic — exactly the weakness §VI-B
        // demonstrates and the DMQ wrapper repairs.
        self.can = self.can.saturating_add(1);
        if self.can == self.san {
            self.sar = Some(row);
        }
        None
    }

    fn on_refresh(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        let decision = self.current_decision();
        self.begin_window(rng);
        decision
    }

    fn name(&self) -> &'static str {
        "MINT"
    }

    fn live_entries(&self) -> usize {
        usize::from(self.sar.is_some())
    }

    fn entries(&self) -> usize {
        1
    }

    /// CAN (7) + SAN (7) + SAR (18) = 32 bits = 4 bytes (paper §VIII-C).
    fn storage_bits(&self) -> u64 {
        32
    }

    fn reset(&mut self, rng: &mut dyn Rng64) {
        self.sar = None;
        self.transitive_distance = 0;
        self.begin_window(rng);
    }

    /// `[san, can, sar_valid, sar_row, transitive_distance]`.
    fn snapshot_state(&self) -> Vec<u64> {
        vec![
            u64::from(self.san),
            u64::from(self.can),
            u64::from(self.sar.is_some()),
            u64::from(self.sar.map_or(0, |r| r.0)),
            u64::from(self.transitive_distance),
        ]
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let [san, can, sar_valid, sar_row, dist] = state else {
            return Err(format!("MINT: expected 5 state words, got {}", state.len()));
        };
        let word32 = |w: u64, what: &str| {
            u32::try_from(w).map_err(|_| format!("MINT: {what} {w} exceeds u32"))
        };
        self.san = word32(*san, "SAN")?;
        self.can = word32(*can, "CAN")?;
        self.sar = match sar_valid {
            0 => None,
            1 => Some(RowId(word32(*sar_row, "SAR")?)),
            v => return Err(format!("MINT: SAR valid bit {v} not 0/1")),
        };
        self.transitive_distance = word32(*dist, "transitive distance")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mint_rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn single_sided_full_window_guaranteed_selection() {
        // Paper §V-C: a row occupying all 73 slots is guaranteed selection,
        // unless the window is a transitive one (SAN = 0), in which case the
        // transitive mitigation protects the same neighbourhood.
        let mut r = rng(11);
        let mut mint = Mint::new(MintConfig::ddr5_default(), &mut r);
        for trial in 0..1000 {
            let was_transitive_window = mint.san() == 0;
            let prev_sar = mint.sar();
            for _ in 0..73 {
                mint.on_activation(RowId(42), &mut r);
            }
            let d = mint.on_refresh(&mut r);
            if was_transitive_window {
                // SAR was preserved from before; decision is transitive
                // (or None if nothing had ever been selected).
                match d {
                    MitigationDecision::Transitive { .. } | MitigationDecision::None => {}
                    other => panic!("trial {trial}: unexpected decision {other:?}"),
                }
                if prev_sar.is_some() {
                    assert!(d.is_some());
                }
            } else {
                assert!(
                    d.mitigates(RowId(42)),
                    "trial {trial}: full-window aggressor must be selected"
                );
            }
        }
    }

    #[test]
    fn without_transitive_selection_is_always_guaranteed() {
        let mut r = rng(12);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut mint = Mint::new(cfg, &mut r);
        for _ in 0..1000 {
            for _ in 0..73 {
                mint.on_activation(RowId(7), &mut r);
            }
            assert!(mint.on_refresh(&mut r).mitigates(RowId(7)));
        }
    }

    #[test]
    fn double_sided_always_hits_one_aggressor() {
        let mut r = rng(13);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut mint = Mint::new(cfg, &mut r);
        for _ in 0..1000 {
            for i in 0..73 {
                let row = if i % 2 == 0 { RowId(100) } else { RowId(102) };
                mint.on_activation(row, &mut r);
            }
            let d = mint.on_refresh(&mut r);
            assert!(d.mitigates(RowId(100)) || d.mitigates(RowId(102)));
        }
    }

    #[test]
    fn partial_window_can_select_nothing() {
        let mut r = rng(14);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut mint = Mint::new(cfg, &mut r);
        let mut nones = 0;
        let trials = 2000;
        for _ in 0..trials {
            mint.on_activation(RowId(1), &mut r); // only slot 1 used
            if mint.on_refresh(&mut r).is_none() {
                nones += 1;
            }
        }
        // P(None) = 72/73 ≈ 0.986.
        let rate = f64::from(nones) / f64::from(trials);
        assert!((rate - 72.0 / 73.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn selection_probability_uniform_over_positions() {
        // Hammer position k only; hit rate must be 1/74 for every k.
        for &k in &[1u32, 20, 37, 73] {
            let mut r = rng(1000 + u64::from(k));
            let mut mint = Mint::new(MintConfig::ddr5_default(), &mut r);
            let trials = 40_000;
            let mut hits = 0;
            for _ in 0..trials {
                for slot in 1..=73 {
                    let row = if slot == k {
                        RowId(5)
                    } else {
                        RowId(1_000 + slot)
                    };
                    mint.on_activation(row, &mut r);
                }
                if mint.on_refresh(&mut r).mitigates(RowId(5)) {
                    hits += 1;
                }
            }
            let rate = f64::from(hits) / f64::from(trials);
            let expect = 1.0 / 74.0;
            assert!(
                (rate - expect).abs() < 2.5e-3,
                "position {k}: rate {rate} vs {expect}"
            );
        }
    }

    #[test]
    fn no_overwrite_of_selection() {
        // Force SAN = 1 by construction: scan windows until san() == 1, then
        // check that later activations never replace the latched row.
        let mut r = rng(15);
        let mut mint = Mint::new(MintConfig::ddr5_default(), &mut r);
        let mut checked = 0;
        while checked < 50 {
            if mint.san() == 1 {
                mint.on_activation(RowId(555), &mut r);
                for other in 0..72 {
                    mint.on_activation(RowId(10_000 + other), &mut r);
                }
                assert_eq!(mint.sar(), Some(RowId(555)));
                checked += 1;
            } else {
                for _ in 0..73 {
                    mint.on_activation(RowId(1), &mut r);
                }
            }
            mint.on_refresh(&mut r);
        }
    }

    #[test]
    fn transitive_window_preserves_sar_and_reports_distance() {
        let mut r = rng(16);
        let mut mint = Mint::new(MintConfig::ddr5_default(), &mut r);
        // Run windows until we see: window w selects row X (aggressor
        // decision at REF), and the *next* draw is SAN = 0.
        let mut seen_transitive = false;
        for _ in 0..20_000 {
            for _ in 0..73 {
                mint.on_activation(RowId(77), &mut r);
            }
            let before_san = mint.san();
            let d = mint.on_refresh(&mut r);
            if before_san == 0 {
                if let MitigationDecision::Transitive { around, distance } = d {
                    assert_eq!(around, RowId(77));
                    assert!(distance >= 1);
                    seen_transitive = true;
                    break;
                }
            }
        }
        assert!(
            seen_transitive,
            "never saw a transitive window in 20k tries"
        );
    }

    #[test]
    fn transitive_probability_about_one_in_74() {
        let mut r = rng(17);
        let mut mint = Mint::new(MintConfig::ddr5_default(), &mut r);
        let trials = 100_000;
        let mut transitive_windows = 0;
        for _ in 0..trials {
            for _ in 0..73 {
                mint.on_activation(RowId(3), &mut r);
            }
            if mint.san() == 0 {
                transitive_windows += 1;
            }
            mint.on_refresh(&mut r);
        }
        let rate = f64::from(transitive_windows) / f64::from(trials);
        assert!((rate - 1.0 / 74.0).abs() < 1.5e-3, "rate {rate}");
    }

    #[test]
    fn can_saturates_under_postponement_like_flood() {
        // Without DMQ, activations beyond the window are invisible (§VI-B):
        // selection depends only on the first `window_slots` positions.
        let mut r = rng(18);
        let cfg = MintConfig::ddr5_default().without_transitive();
        let mut mint = Mint::new(cfg, &mut r);
        for _ in 0..365 {
            mint.on_activation(RowId(900), &mut r);
        }
        // SAN is in 1..=73, so the row is selected — but the point is that
        // the 292 extra ACTs could have been a *different* row and would
        // never be seen. Emulate: decoys first, attack row after slot 73.
        mint.on_refresh(&mut r);
        for slot in 0..73 {
            mint.on_activation(RowId(10 + slot), &mut r);
        }
        for _ in 0..292 {
            mint.on_activation(RowId(666), &mut r);
        }
        let d = mint.on_refresh(&mut r);
        assert!(
            !d.mitigates(RowId(666)),
            "row hammered only after MaxACT must be invisible"
        );
    }

    #[test]
    fn reset_clears_sar() {
        let mut r = rng(19);
        let mut mint = Mint::new(MintConfig::ddr5_default(), &mut r);
        for _ in 0..73 {
            mint.on_activation(RowId(8), &mut r);
        }
        mint.reset(&mut r);
        assert_eq!(mint.sar(), None);
        assert_eq!(mint.can(), 0);
    }

    #[test]
    fn storage_is_four_bytes() {
        let mut r = rng(20);
        let mint = Mint::new(MintConfig::ddr5_default(), &mut r);
        assert_eq!(mint.storage_bits(), 32);
        assert_eq!(mint.entries(), 1);
        assert_eq!(mint.name(), "MINT");
    }
}
