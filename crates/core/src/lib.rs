//! # mint-core — the MINT tracker (the paper's contribution)
//!
//! This crate implements the primary contribution of *"MINT: Securely
//! Mitigating Rowhammer with a Minimalist In-DRAM Tracker"* (MICRO 2024):
//!
//! * [`Mint`] — the single-entry, *future-centric* tracker (§V). At each
//!   refresh it draws a Selected Activation Number uniformly over the
//!   upcoming mitigation window; the activation whose sequence number matches
//!   is latched into the Selected Address Register and mitigated at the next
//!   refresh. Slot 0 encodes *transitive mitigation* (§V-E), protecting
//!   against Half-Double-style attacks.
//! * [`Dmq`] — the Delayed Mitigation Queue (§VI): a 4-entry FIFO wrapper
//!   that makes any low-cost tracker compatible with DDR5 refresh
//!   postponement by converting the tracker's window from REF-synchronised
//!   to activation-counted.
//! * [`MintRfm`] — the MINT+RFM co-design (§VII): mitigation windows of
//!   RFM-threshold activations (32 or 16), roughly doubling or quadrupling
//!   the mitigation rate.
//! * [`RowPressMint`] — the Appendix C extension: a fixed-point CAN register
//!   that weighs each activation by its ImPress *equivalent activation
//!   count*, tolerating Row-Press without affecting the MinTRH.
//!
//! The [`InDramTracker`] trait is the interface every tracker in this
//! repository implements (the baselines live in `mint-trackers`), and is what
//! the Monte-Carlo engine in `mint-sim` drives.
//!
//! # Examples
//!
//! A classic double-sided attack is *guaranteed* to lose against MINT if it
//! uses every activation slot (paper §V-C):
//!
//! ```
//! use mint_core::{InDramTracker, Mint, MintConfig};
//! use mint_dram::RowId;
//! use mint_rng::Xoshiro256StarStar;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let mut mint = Mint::new(MintConfig::ddr5_default(), &mut rng);
//!
//! // Alternate aggressors B and D around shared victim C for a full tREFI.
//! for i in 0..73 {
//!     let row = if i % 2 == 0 { RowId(20) } else { RowId(22) };
//!     assert!(mint.on_activation(row, &mut rng).is_none());
//! }
//! let decision = mint.on_refresh(&mut rng);
//! assert!(decision.mitigates(RowId(20)) || decision.mitigates(RowId(22)));
//! ```

mod config;
mod dmq;
mod mint;
mod rfm;
mod rowpress;
mod tracker;

pub use config::MintConfig;
pub use dmq::{Dmq, DMQ_ENTRIES};
pub use mint::Mint;
pub use rfm::MintRfm;
pub use rowpress::{eact_fixed_point, RowPressMint, EACT_FRAC_BITS};
pub use tracker::{InDramTracker, MitigationDecision};
