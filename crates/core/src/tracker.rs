//! The tracker interface shared by MINT and every baseline.

use mint_dram::RowId;
use mint_rng::Rng64;

/// What a tracker wants mitigated at a refresh opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MitigationDecision {
    /// Nothing selected in the elapsed window.
    None,
    /// Refresh the victims (blast radius) of this aggressor row.
    Aggressor(RowId),
    /// Transitive mitigation (paper §V-E): refresh the rows `distance`
    /// further out than the direct victims of `around` — for blast radius 1
    /// and `distance` 1, rows `around ± 2`.
    Transitive {
        /// The previously mitigated aggressor at the centre of the pattern.
        around: RowId,
        /// Extra reach beyond the blast radius (≥ 1; grows when consecutive
        /// transitive selections recurse).
        distance: u32,
    },
    /// Refresh exactly this row (victim-centric trackers such as ProTRR
    /// identify the endangered row itself rather than its aggressor).
    VictimRefresh(RowId),
}

impl MitigationDecision {
    /// `true` if this decision directly mitigates `row` (i.e. refreshes
    /// `row`'s neighbours because `row` was identified as the aggressor).
    #[must_use]
    pub fn mitigates(&self, row: RowId) -> bool {
        matches!(self, MitigationDecision::Aggressor(r) if *r == row)
    }

    /// `true` if no mitigation will be performed.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, MitigationDecision::None)
    }

    /// `true` if some mitigation (aggressor or transitive) will be performed.
    #[must_use]
    pub fn is_some(&self) -> bool {
        !self.is_none()
    }
}

/// A Rowhammer mitigation tracker living inside the DRAM device.
///
/// The contract mirrors the constraints the paper lays out in §I–II:
///
/// * The device observes every demand activation
///   ([`on_activation`](Self::on_activation)) but **not** the mitigative
///   refreshes it performs itself (those are "silent").
/// * Mitigation can only happen at refresh opportunities
///   ([`on_refresh`](Self::on_refresh)), except for RFM-style designs, which
///   may return a decision directly from `on_activation` when the memory
///   controller issues an RFM mid-interval.
/// * Storage is measured in tracker entries ([`entries`](Self::entries)) and
///   bits ([`storage_bits`](Self::storage_bits)) for the Table IX
///   comparison.
///
/// Implementations must be deterministic given the `Rng64` stream: the whole
/// repository's experiments replay from seeds.
pub trait InDramTracker {
    /// Observes a demand activation of `row`.
    ///
    /// Returns `Some(decision)` only for trackers whose mitigation window is
    /// activation-counted (RFM co-designs, [`Dmq`](crate::Dmq) wrappers);
    /// plain REF-synchronised trackers always return `None` here.
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision>;

    /// Observes a row being refreshed as part of a mitigation the device
    /// itself performed. A victim refresh *is* an activation of the victim
    /// row, and per-row counting trackers (PRCT, Mithril) count it — that is
    /// precisely what makes them immune to transitive attacks (§V-G).
    /// Probabilistic single-entry trackers cannot see these (the paper calls
    /// them "silent"), hence the default is a no-op.
    fn on_mitigative_refresh(&mut self, row: RowId) {
        let _ = row;
    }

    /// A REF command arrives: report the row to mitigate during the stolen
    /// refresh time and start a new tracking window.
    fn on_refresh(&mut self, rng: &mut dyn Rng64) -> MitigationDecision;

    /// Ends the current tracking window and reports the selection *without*
    /// an accompanying REF (a DMQ "pseudo-mitigation", §VI-C). The default
    /// forwards to [`on_refresh`](Self::on_refresh), which is correct for
    /// every tracker whose refresh handler just drains the window.
    fn pseudo_mitigate(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        self.on_refresh(rng)
    }

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Number of row-tracking entries (the paper's cost metric, Table III).
    fn entries(&self) -> usize;

    /// Total SRAM bits of tracker state (Table IX storage comparison).
    fn storage_bits(&self) -> u64;

    /// Restores the power-on state (new window, cleared registers).
    fn reset(&mut self, rng: &mut dyn Rng64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_predicates() {
        let none = MitigationDecision::None;
        assert!(none.is_none());
        assert!(!none.is_some());
        assert!(!none.mitigates(RowId(1)));

        let agg = MitigationDecision::Aggressor(RowId(5));
        assert!(agg.is_some());
        assert!(agg.mitigates(RowId(5)));
        assert!(!agg.mitigates(RowId(6)));

        let tr = MitigationDecision::Transitive {
            around: RowId(5),
            distance: 1,
        };
        assert!(tr.is_some());
        assert!(
            !tr.mitigates(RowId(5)),
            "transitive is not a direct mitigation"
        );
    }
}
