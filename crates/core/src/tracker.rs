//! The tracker interface shared by MINT and every baseline.

use mint_dram::RowId;
use mint_rng::Rng64;

/// What a tracker wants mitigated at a refresh opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MitigationDecision {
    /// Nothing selected in the elapsed window.
    None,
    /// Refresh the victims (blast radius) of this aggressor row.
    Aggressor(RowId),
    /// Transitive mitigation (paper §V-E): refresh the rows `distance`
    /// further out than the direct victims of `around` — for blast radius 1
    /// and `distance` 1, rows `around ± 2`.
    Transitive {
        /// The previously mitigated aggressor at the centre of the pattern.
        around: RowId,
        /// Extra reach beyond the blast radius (≥ 1; grows when consecutive
        /// transitive selections recurse).
        distance: u32,
    },
    /// Refresh exactly this row (victim-centric trackers such as ProTRR
    /// identify the endangered row itself rather than its aggressor).
    VictimRefresh(RowId),
}

impl MitigationDecision {
    /// `true` if this decision directly mitigates `row` (i.e. refreshes
    /// `row`'s neighbours because `row` was identified as the aggressor).
    #[must_use]
    pub fn mitigates(&self, row: RowId) -> bool {
        matches!(self, MitigationDecision::Aggressor(r) if *r == row)
    }

    /// `true` if no mitigation will be performed.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, MitigationDecision::None)
    }

    /// `true` if some mitigation (aggressor or transitive) will be performed.
    #[must_use]
    pub fn is_some(&self) -> bool {
        !self.is_none()
    }

    /// The rows this decision refreshes for a device with the given blast
    /// radius, in the order the device issues them (for [`Aggressor`]:
    /// `−1, +1, −2, +2, …`; for [`Transitive`]: `−reach, +reach`).
    ///
    /// Rows that would fall below row 0 are dropped (banks clip at the
    /// edge); callers with an upper bound filter against it themselves.
    /// This is the **single source of truth** for mitigation cost: the
    /// Monte-Carlo engine applies exactly these refreshes and the memory
    /// system charges one victim ACT per returned row — they can never
    /// disagree on what a decision costs.
    ///
    /// [`Aggressor`]: MitigationDecision::Aggressor
    /// [`Transitive`]: MitigationDecision::Transitive
    #[must_use]
    pub fn victim_rows(&self, blast_radius: u32) -> Vec<RowId> {
        if self.is_none() {
            return Vec::new(); // allocation-free: None is the common case
        }
        let mut rows = Vec::with_capacity(2 * blast_radius as usize);
        match *self {
            MitigationDecision::None => {}
            MitigationDecision::Aggressor(r) => {
                for d in 1..=i64::from(blast_radius) {
                    rows.extend(r.offset(-d));
                    rows.extend(r.offset(d));
                }
            }
            MitigationDecision::Transitive { around, distance } => {
                let reach = i64::from(blast_radius) + i64::from(distance);
                rows.extend(around.offset(-reach));
                rows.extend(around.offset(reach));
            }
            MitigationDecision::VictimRefresh(v) => rows.push(v),
        }
        rows
    }

    /// Number of victim-refresh activations this decision performs for the
    /// given blast radius: 0 for [`None`](MitigationDecision::None),
    /// `2 × blast_radius` for an aggressor mitigation, 2 for a transitive
    /// one and exactly 1 for a [`VictimRefresh`] (victim-centric trackers
    /// such as ProTRR refresh the endangered row itself) — minus any rows
    /// clipped at the row-0 edge.
    ///
    /// [`VictimRefresh`]: MitigationDecision::VictimRefresh
    #[must_use]
    pub fn victim_act_count(&self, blast_radius: u32) -> u64 {
        self.victim_rows(blast_radius).len() as u64
    }

    /// Packs the decision into its fixed three-word checkpoint encoding
    /// `[tag, row, distance]` (tags: 0 `None`, 1 `Aggressor`, 2
    /// `Transitive`, 3 `VictimRefresh`), the form trackers use inside
    /// [`InDramTracker::snapshot_state`].
    #[must_use]
    pub fn encode(&self) -> [u64; 3] {
        match *self {
            MitigationDecision::None => [0, 0, 0],
            MitigationDecision::Aggressor(r) => [1, u64::from(r.0), 0],
            MitigationDecision::Transitive { around, distance } => {
                [2, u64::from(around.0), u64::from(distance)]
            }
            MitigationDecision::VictimRefresh(v) => [3, u64::from(v.0), 0],
        }
    }

    /// Unpacks the three-word form produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a description of the corruption if the tag is unknown or a
    /// field exceeds its 32-bit range.
    pub fn decode(words: [u64; 3]) -> Result<Self, String> {
        let row = |w: u64| -> Result<RowId, String> {
            u32::try_from(w)
                .map(RowId)
                .map_err(|_| format!("decision row {w} exceeds u32"))
        };
        match words[0] {
            0 => Ok(MitigationDecision::None),
            1 => Ok(MitigationDecision::Aggressor(row(words[1])?)),
            2 => Ok(MitigationDecision::Transitive {
                around: row(words[1])?,
                distance: u32::try_from(words[2])
                    .map_err(|_| format!("transitive distance {} exceeds u32", words[2]))?,
            }),
            3 => Ok(MitigationDecision::VictimRefresh(row(words[1])?)),
            tag => Err(format!("unknown decision tag {tag}")),
        }
    }
}

/// A Rowhammer mitigation tracker living inside the DRAM device.
///
/// The contract mirrors the constraints the paper lays out in §I–II:
///
/// * The device observes every demand activation
///   ([`on_activation`](Self::on_activation)) but **not** the mitigative
///   refreshes it performs itself (those are "silent").
/// * Mitigation can only happen at refresh opportunities
///   ([`on_refresh`](Self::on_refresh)), except for RFM-style designs, which
///   may return a decision directly from `on_activation` when the memory
///   controller issues an RFM mid-interval.
/// * Storage is measured in tracker entries ([`entries`](Self::entries)) and
///   bits ([`storage_bits`](Self::storage_bits)) for the Table IX
///   comparison.
///
/// Implementations must be deterministic given the `Rng64` stream: the whole
/// repository's experiments replay from seeds.
pub trait InDramTracker {
    /// Observes a demand activation of `row`.
    ///
    /// Returns `Some(decision)` only for trackers whose mitigation window is
    /// activation-counted (RFM co-designs, [`Dmq`](crate::Dmq) wrappers);
    /// plain REF-synchronised trackers always return `None` here.
    fn on_activation(&mut self, row: RowId, rng: &mut dyn Rng64) -> Option<MitigationDecision>;

    /// Observes a row being refreshed as part of a mitigation the device
    /// itself performed. A victim refresh *is* an activation of the victim
    /// row, and per-row counting trackers (PRCT, Mithril) count it — that is
    /// precisely what makes them immune to transitive attacks (§V-G).
    /// Probabilistic single-entry trackers cannot see these (the paper calls
    /// them "silent"), hence the default is a no-op.
    fn on_mitigative_refresh(&mut self, row: RowId) {
        let _ = row;
    }

    /// A REF command arrives: report the row to mitigate during the stolen
    /// refresh time and start a new tracking window.
    fn on_refresh(&mut self, rng: &mut dyn Rng64) -> MitigationDecision;

    /// Ends the current tracking window and reports the selection *without*
    /// an accompanying REF (a DMQ "pseudo-mitigation", §VI-C). The default
    /// forwards to [`on_refresh`](Self::on_refresh), which is correct for
    /// every tracker whose refresh handler just drains the window.
    fn pseudo_mitigate(&mut self, rng: &mut dyn Rng64) -> MitigationDecision {
        self.on_refresh(rng)
    }

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Number of tracking entries currently occupied (telemetry: table
    /// occupancy). Stateless or purely probabilistic trackers report 0.
    fn live_entries(&self) -> usize {
        0
    }

    /// Observations the tracker has lost to a full table, FIFO or buffer
    /// so far (telemetry: eviction/rollover pressure). Trackers that
    /// never drop report 0.
    fn overflow_count(&self) -> u64 {
        0
    }

    /// Number of row-tracking entries (the paper's cost metric, Table III).
    fn entries(&self) -> usize;

    /// Total SRAM bits of tracker state (Table IX storage comparison).
    fn storage_bits(&self) -> u64;

    /// Restores the power-on state (new window, cleared registers).
    fn reset(&mut self, rng: &mut dyn Rng64);

    /// Serializes every dynamic register of the tracker into a flat word
    /// vector — the tracker half of the simulator checkpoint contract.
    ///
    /// The encoding is tracker-private but must be **canonical**: two
    /// trackers in the same logical state produce identical words even
    /// across processes (hash-map iteration order must not leak into the
    /// output), and [`restore_state`](Self::restore_state) applied to a
    /// fresh instance of the same configuration must continue the stream
    /// bit-identically. Configuration (entry counts, thresholds,
    /// probabilities) is *not* included — the restorer rebuilds it from the
    /// scenario spec.
    fn snapshot_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores the dynamic state captured by
    /// [`snapshot_state`](Self::snapshot_state) onto a tracker built from
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if `state` was not produced by
    /// the same tracker type and configuration.
    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{}: expected empty state, got {} words",
                self.name(),
                state.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_predicates() {
        let none = MitigationDecision::None;
        assert!(none.is_none());
        assert!(!none.is_some());
        assert!(!none.mitigates(RowId(1)));

        let agg = MitigationDecision::Aggressor(RowId(5));
        assert!(agg.is_some());
        assert!(agg.mitigates(RowId(5)));
        assert!(!agg.mitigates(RowId(6)));

        let tr = MitigationDecision::Transitive {
            around: RowId(5),
            distance: 1,
        };
        assert!(tr.is_some());
        assert!(
            !tr.mitigates(RowId(5)),
            "transitive is not a direct mitigation"
        );
    }

    #[test]
    fn victim_act_counts_per_variant() {
        assert_eq!(MitigationDecision::None.victim_act_count(1), 0);
        assert_eq!(
            MitigationDecision::Aggressor(RowId(10)).victim_act_count(1),
            2
        );
        assert_eq!(
            MitigationDecision::Aggressor(RowId(10)).victim_act_count(2),
            4
        );
        assert_eq!(
            MitigationDecision::Transitive {
                around: RowId(10),
                distance: 1,
            }
            .victim_act_count(1),
            2
        );
        assert_eq!(
            MitigationDecision::VictimRefresh(RowId(10)).victim_act_count(1),
            1,
            "a victim refresh is exactly one activation, not a pair"
        );
    }

    #[test]
    fn victim_rows_order_and_edge_clipping() {
        assert_eq!(
            MitigationDecision::Aggressor(RowId(10)).victim_rows(2),
            vec![RowId(9), RowId(11), RowId(8), RowId(12)]
        );
        // Row 0 has no lower neighbour: the pair clips to one victim.
        assert_eq!(
            MitigationDecision::Aggressor(RowId(0)).victim_rows(1),
            vec![RowId(1)]
        );
        assert_eq!(
            MitigationDecision::Aggressor(RowId(0)).victim_act_count(1),
            1
        );
        assert_eq!(
            MitigationDecision::Transitive {
                around: RowId(10),
                distance: 2,
            }
            .victim_rows(1),
            vec![RowId(7), RowId(13)]
        );
        assert!(MitigationDecision::None.victim_rows(1).is_empty());
    }

    #[test]
    fn decision_word_encoding_round_trips() {
        for d in [
            MitigationDecision::None,
            MitigationDecision::Aggressor(RowId(7)),
            MitigationDecision::Transitive {
                around: RowId(9),
                distance: 3,
            },
            MitigationDecision::VictimRefresh(RowId(u32::MAX)),
        ] {
            assert_eq!(MitigationDecision::decode(d.encode()), Ok(d));
        }
        assert!(MitigationDecision::decode([4, 0, 0]).is_err());
        assert!(MitigationDecision::decode([1, u64::from(u32::MAX) + 1, 0]).is_err());
    }
}
