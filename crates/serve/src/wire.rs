//! Wire format v1: JSON-lines envelopes in, JSON-lines results out.
//!
//! Every request and response is one JSON object per line, hand-rolled
//! over [`mint_exp::json`] (the workspace carries no serde). Requests:
//!
//! ```json
//! {"v":1,"id":7,"op":"submit","spec":"scheme = mint\nworkload = mcf\nrequests = 2000"}
//! {"v":1,"id":7,"op":"cancel"}
//! {"v":1,"op":"shutdown"}
//! ```
//!
//! `submit` optionally carries `"seed_base": S` (the job then runs with
//! `derive_seed(S, id)` — deterministic per-job seed derivation) and
//! `"timeout_ms": T`. Responses:
//!
//! ```json
//! {"v":1,"id":7,"ok":true,"kind":"cell","result":{"scheme":"MINT","duration_ps":…}}
//! {"v":1,"id":8,"ok":true,"kind":"grid","result":{"requests_per_core":…,"schemes":[…],"rows":[…]}}
//! {"v":1,"id":7,"ok":true,"kind":"cancel"}
//! {"v":1,"id":9,"ok":false,"error":"spec: line 2: unknown scheme \"mnit\""}
//! ```
//!
//! Result payloads mirror `run_scenario`'s batch `SCENARIO_report.json`
//! fields (same `{:.6}` / `{:.9}` float formatting), compacted to one
//! line. Responses are emitted **in submission order** regardless of the
//! worker count — the `ci_smoke` serve leg diffs the byte streams at
//! jobs 1 vs 4.

use mint_exp::json::{quote, Json};
use mint_memsys::{NormalizedPerf, RunReport, ScenarioGrid};
use mint_obs::TelemetryReport;

/// Version stamped on (and required of) every envelope.
pub const WIRE_VERSION: u64 = 1;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// Run one scenario (cell or grid text) as job `id`.
    Submit {
        /// Caller-chosen job id, echoed on the response line.
        id: u64,
        /// `ScenarioSpec` / `ScenarioGrid` text form.
        spec: String,
        /// When present, the job runs with `derive_seed(seed_base, id)`
        /// instead of the spec's own seed (cells only).
        seed_base: Option<u64>,
        /// When present, a cell job is abandoned once it has run this
        /// long (checked at every chunk boundary).
        timeout_ms: Option<u64>,
    },
    /// Request cancellation of job `id`: queued jobs are dropped, a
    /// running cell job stops at its next chunk boundary.
    Cancel {
        /// The job to cancel.
        id: u64,
    },
    /// Ask for the service's wall-clock statistics (job count,
    /// queue-wait and run-latency histograms) as Prometheus text.
    Stats {
        /// Caller-chosen request id, echoed on the response line.
        id: u64,
    },
    /// Stop intake and drain: queued jobs still run and stream their
    /// results, then the service exits.
    Shutdown,
}

impl Envelope {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Describes the malformed JSON, a wrong/missing `"v"`, an unknown
    /// `"op"`, or a missing/mistyped field.
    pub fn parse_line(line: &str) -> Result<Envelope, String> {
        let v = Json::parse(line)?;
        let version = v
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing numeric \"v\"".to_string())?;
        if version != WIRE_VERSION {
            return Err(format!(
                "unsupported wire version {version} (this service speaks {WIRE_VERSION})"
            ));
        }
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"op\"".to_string())?;
        let id = || {
            v.get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{op} needs a numeric \"id\""))
        };
        let opt_u64 = |key: &str| match v.get(key) {
            None => Ok(None),
            Some(field) => field
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("\"{key}\" must be an unsigned integer")),
        };
        match op {
            "submit" => Ok(Envelope::Submit {
                id: id()?,
                spec: v
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "submit needs a \"spec\" string".to_string())?
                    .to_string(),
                seed_base: opt_u64("seed_base")?,
                timeout_ms: opt_u64("timeout_ms")?,
            }),
            "cancel" => Ok(Envelope::Cancel { id: id()? }),
            "stats" => Ok(Envelope::Stats { id: id()? }),
            "shutdown" => Ok(Envelope::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders the canonical request line (what clients write);
    /// `parse_line(to_line(e)) == e` for any envelope.
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            Envelope::Submit {
                id,
                spec,
                seed_base,
                timeout_ms,
            } => {
                let mut line = format!(
                    "{{\"v\":{WIRE_VERSION},\"id\":{id},\"op\":\"submit\",\"spec\":{}",
                    quote(spec)
                );
                if let Some(base) = seed_base {
                    line.push_str(&format!(",\"seed_base\":{base}"));
                }
                if let Some(ms) = timeout_ms {
                    line.push_str(&format!(",\"timeout_ms\":{ms}"));
                }
                line.push('}');
                line
            }
            Envelope::Cancel { id } => {
                format!("{{\"v\":{WIRE_VERSION},\"id\":{id},\"op\":\"cancel\"}}")
            }
            Envelope::Stats { id } => {
                format!("{{\"v\":{WIRE_VERSION},\"id\":{id},\"op\":\"stats\"}}")
            }
            Envelope::Shutdown => format!("{{\"v\":{WIRE_VERSION},\"op\":\"shutdown\"}}"),
        }
    }
}

/// The success line for a cell job (fields and float formatting match
/// the batch `SCENARIO_report.json`, compacted to one line). Jobs run
/// with `telemetry = on` additionally carry a `"stats"` summary object;
/// lines for plain jobs are byte-identical to wire v1 before it existed.
#[must_use]
pub fn ok_cell_line(id: u64, scheme_label: &str, report: &RunReport) -> String {
    let r = &report.perf.result;
    let stats = report
        .telemetry
        .as_ref()
        .map_or_else(String::new, |t| format!(",\"stats\":{}", stats_object(t)));
    format!(
        "{{\"v\":{WIRE_VERSION},\"id\":{id},\"ok\":true,\"kind\":\"cell\",\"result\":\
         {{\"scheme\":{},\"duration_ps\":{},\"requests\":{},\"row_hit_rate\":{:.6},\
         \"mitigative_acts\":{},\"energy_j\":{:.9}{stats}}}}}",
        quote(scheme_label),
        report.perf.duration_ps,
        r.requests,
        r.row_hit_rate(),
        r.mitigative_acts,
        report.energy.total_j(),
    )
}

/// The headline counters of a job's [`TelemetryReport`], compacted to a
/// small JSON object: session totals plus scheduler decisions and
/// tracker mitigations summed across every channel.
fn stats_object(t: &TelemetryReport) -> String {
    let session = |name: &str| t.counter("session", name).unwrap_or(0);
    let summed = |suffix: &str, metric: &str| {
        t.sections
            .iter()
            .filter(|s| s.name.ends_with(suffix))
            .flat_map(|s| &s.counters)
            .filter(|(n, _)| n == metric)
            .map(|(_, v)| v)
            .sum::<u64>()
    };
    format!(
        "{{\"generated\":{},\"admitted\":{},\"serviced\":{},\
         \"sched_decisions\":{},\"mitigations\":{}}}",
        session("generated"),
        session("admitted"),
        session("serviced"),
        summed("/sched", "decisions"),
        summed("/tracker", "mitigations"),
    )
}

/// The success line for a grid job.
#[must_use]
pub fn ok_grid_line(id: u64, grid: &ScenarioGrid, rows: &[Vec<NormalizedPerf>]) -> String {
    let schemes = grid
        .schemes
        .iter()
        .map(|s| quote(&s.label()))
        .collect::<Vec<_>>()
        .join(",");
    let rendered = grid
        .workload_labels
        .iter()
        .zip(rows)
        .map(|(label, row)| {
            format!(
                "{{\"workload\":{},\"normalized\":[{}],\"duration_ps\":[{}]}}",
                quote(label),
                row.iter()
                    .map(|c| format!("{:.6}", c.normalized))
                    .collect::<Vec<_>>()
                    .join(","),
                row.iter()
                    .map(|c| c.duration_ps.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"v\":{WIRE_VERSION},\"id\":{id},\"ok\":true,\"kind\":\"grid\",\"result\":\
         {{\"requests_per_core\":{},\"schemes\":[{schemes}],\"rows\":[{rendered}]}}}}",
        grid.requests_per_core,
    )
}

/// The failure line (`id` is `null` when the envelope itself was
/// unparseable).
#[must_use]
pub fn error_line(id: Option<u64>, error: &str) -> String {
    let id = id.map_or_else(|| "null".to_string(), |id| id.to_string());
    format!(
        "{{\"v\":{WIRE_VERSION},\"id\":{id},\"ok\":false,\"error\":{}}}",
        quote(error)
    )
}

/// The immediate acknowledgement of a `cancel` request (the cancelled
/// job's own line reports the outcome).
#[must_use]
pub fn cancel_ack_line(id: u64) -> String {
    format!("{{\"v\":{WIRE_VERSION},\"id\":{id},\"ok\":true,\"kind\":\"cancel\"}}")
}

/// The response to a `stats` request: the service's wall-clock ledger
/// rendered as Prometheus exposition text, carried as one JSON string.
#[must_use]
pub fn stats_line(id: u64, prometheus_text: &str) -> String {
    format!(
        "{{\"v\":{WIRE_VERSION},\"id\":{id},\"ok\":true,\"kind\":\"stats\",\"result\":\
         {{\"prometheus\":{}}}}}",
        quote(prometheus_text)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_round_trip() {
        let all = [
            Envelope::Submit {
                id: 7,
                spec: "scheme = mint\nworkload = mcf\nrequests = 100".to_string(),
                seed_base: None,
                timeout_ms: None,
            },
            Envelope::Submit {
                id: 8,
                spec: "workload = lbm".to_string(),
                seed_base: Some(0xC0FFEE),
                timeout_ms: Some(5_000),
            },
            Envelope::Cancel { id: 7 },
            Envelope::Stats { id: 9 },
            Envelope::Shutdown,
        ];
        for e in all {
            assert_eq!(Envelope::parse_line(&e.to_line()).unwrap(), e, "{e:?}");
        }
    }

    #[test]
    fn malformed_envelopes_are_described() {
        for (line, needle) in [
            ("not json", "expected"),
            ("{\"id\":1,\"op\":\"submit\"}", "missing numeric \"v\""),
            (
                "{\"v\":2,\"id\":1,\"op\":\"cancel\"}",
                "unsupported wire version 2",
            ),
            ("{\"v\":1,\"id\":1}", "missing \"op\""),
            ("{\"v\":1,\"id\":1,\"op\":\"dance\"}", "unknown op"),
            (
                "{\"v\":1,\"op\":\"submit\",\"spec\":\"x\"}",
                "numeric \"id\"",
            ),
            ("{\"v\":1,\"id\":1,\"op\":\"submit\"}", "\"spec\" string"),
            (
                "{\"v\":1,\"id\":1,\"op\":\"submit\",\"spec\":\"x\",\"timeout_ms\":-1}",
                "unsigned integer",
            ),
        ] {
            let err = Envelope::parse_line(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn response_lines_are_single_line_json() {
        use mint_exp::json::Json;
        let err = error_line(None, "spec: line 2:\nbad \"thing\"");
        assert!(!err.contains('\n'), "escaped newline");
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("id"), Some(&Json::Null));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let ack = Json::parse(&cancel_ack_line(3)).unwrap();
        assert_eq!(ack.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(ack.get("kind").and_then(Json::as_str), Some("cancel"));
    }
}
