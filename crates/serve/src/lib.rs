//! # mint-serve — the resident scenario service
//!
//! `run_scenario --serve` turns the batch scenario runner into a
//! long-lived job server: clients stream `ScenarioSpec` / `ScenarioGrid`
//! text wrapped in JSON-lines envelopes (see [`wire`]) over stdin or a
//! unix socket, and the service streams one result line back per job.
//!
//! The execution model:
//!
//! * **Persistent worker pool** — [`Service`] holds `workers` threads
//!   (default: the `mint-exp` jobs resolution, i.e. `--jobs` /
//!   `MINT_JOBS` / available parallelism) fed from a bounded queue of
//!   [`QUEUE_DEPTH`] jobs; intake blocks when the queue is full, so an
//!   arbitrarily long input stream never balloons memory.
//! * **Concurrent connections** — [`Service::serve_unix`] accepts any
//!   number of simultaneous clients; every connection runs its own
//!   intake/emitter pair over the *shared* bounded queue and worker
//!   pool, and each job carries its reply channel, so responses route
//!   back to the submitting connection only.
//! * **Deterministic ordering** — every response line is tagged with its
//!   connection-local input-order sequence number at intake and
//!   re-serialized by that connection's emitter thread, so each
//!   connection's output byte stream is identical for any worker count
//!   (pinned by `ci_smoke`'s serve leg at jobs 1 vs 4).
//! * **Checkpointed cells** — cell jobs run in [`CHUNK`]-request slices
//!   through `Session::run_until` / `resume_until` (the same snapshot
//!   machinery as `mint-memsys`' checkpoint/restore), giving cancel and
//!   timeout points without ever forking a thread per job; bit-identity
//!   of the sliced run is pinned by `tests/checkpoint_identity.rs`.
//! * **Graceful drain** — EOF or a `shutdown` envelope stops intake;
//!   queued jobs still run and stream their results before
//!   [`Service::serve`] returns. Over a socket, `shutdown` also stops
//!   the accept loop once the other live connections have drained.
//! * **Service stats** — workers feed a [`ServeStats`] ledger (job
//!   count, queue-wait and run-latency histograms); a `stats` envelope
//!   returns it as Prometheus text. This is the one layer of the stack
//!   allowed to read the wall clock — simulation telemetry is sampled
//!   on simulated picoseconds only.

pub mod wire;

use std::collections::{BTreeMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mint_memsys::{parse_any, Scenario, ScenarioSpec, SessionRun, SystemConfig};
use mint_obs::{Log2Histogram, Section, TelemetryReport};
use mint_rng::derive_seed;
use wire::Envelope;

/// Requests serviced between cancel/timeout checks of a cell job: each
/// slice runs `Session::run_until` to the next multiple of this, so a
/// cancelled or timed-out job stops at the following chunk boundary.
pub const CHUNK: u64 = 65_536;

/// Jobs the intake loops may queue ahead of the workers before they
/// block (backpressure toward the clients rather than unbounded
/// buffering); shared across every connection of a socket service.
pub const QUEUE_DEPTH: usize = 16;

/// What `serve` saw on its input stream, returned after the drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs accepted onto the queue (parsed `submit` envelopes).
    pub submitted: u64,
    /// Whether intake ended on a `shutdown` envelope (`false` = EOF).
    pub shutdown: bool,
}

/// Wall-clock service statistics, fed by the workers and rendered by
/// the `stats` envelope. Latencies are log₂-bucketed milliseconds.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Jobs a worker finished (success or error line emitted).
    pub jobs_completed: u64,
    /// Submit-to-pickup wait per job, in milliseconds.
    pub queue_wait_ms: Log2Histogram,
    /// Pickup-to-result run time per job, in milliseconds.
    pub job_latency_ms: Log2Histogram,
}

impl ServeStats {
    /// Renders the ledger as a one-section [`TelemetryReport`]
    /// (section `serve`, the wall-clock edge of the obs stack).
    #[must_use]
    pub fn to_report(&self) -> TelemetryReport {
        let mut sec = Section::new("serve");
        sec.counter("jobs_completed", self.jobs_completed);
        sec.histogram("queue_wait_ms", self.queue_wait_ms.clone());
        sec.histogram("job_latency_ms", self.job_latency_ms.clone());
        let mut report = TelemetryReport::new();
        report.push(sec);
        report
    }
}

struct Job {
    /// Connection-local submission order; the reply channel routes the
    /// line back to the emitter that understands this numbering.
    seq: u64,
    id: u64,
    spec: String,
    seed_base: Option<u64>,
    timeout_ms: Option<u64>,
    submitted: Instant,
    reply: mpsc::Sender<(u64, String)>,
}

/// State shared by every worker and connection of one service run.
#[derive(Clone, Default)]
struct Shared {
    cancels: Arc<Mutex<HashSet<u64>>>,
    stats: Arc<Mutex<ServeStats>>,
}

/// A scenario service: a worker pool that serves one envelope stream
/// (stdin mode) or any number of concurrent socket connections.
#[derive(Debug, Clone, Copy)]
pub struct Service {
    workers: usize,
}

impl Default for Service {
    fn default() -> Self {
        Self::new()
    }
}

impl Service {
    /// A service sized by the `mint-exp` jobs resolution (`set_jobs` >
    /// `MINT_JOBS` > available parallelism).
    #[must_use]
    pub fn new() -> Self {
        Self {
            workers: mint_exp::resolve_jobs(None),
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Runs the service over one envelope stream: reads JSON-lines
    /// requests from `input` until EOF or `shutdown`, drains the queue,
    /// and writes one response line per request to `output` in input
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading `input` or writing `output`;
    /// malformed request lines are *not* errors (they produce an
    /// `"id":null` error line and the stream continues).
    pub fn serve<R, W>(&self, input: R, output: W) -> io::Result<ServeSummary>
    where
        R: BufRead,
        W: Write + Send,
    {
        let shared = Shared::default();
        std::thread::scope(|scope| {
            let job_tx = spawn_workers(scope, self.workers, &shared);
            let summary = handle_connection(input, output, &job_tx, &shared);
            // Closing the queue lets the workers drain and exit.
            drop(job_tx);
            summary
        })
    }

    /// Binds a unix socket at `path` (replacing any stale socket file)
    /// and serves connections **concurrently** over one shared worker
    /// pool and bounded job queue, until any connection sends
    /// `shutdown`; the socket file is removed on the way out.
    ///
    /// Each connection keeps its own submission-order output stream —
    /// jobs carry their reply channel, so interleaved clients never see
    /// each other's lines.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept failures; per-connection I/O errors only
    /// end that connection.
    pub fn serve_unix(&self, path: &Path) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let shutdown = AtomicBool::new(false);
        let shared = Shared::default();
        let result = std::thread::scope(|scope| -> io::Result<()> {
            let job_tx = spawn_workers(scope, self.workers, &shared);
            loop {
                let (stream, _) = listener.accept()?;
                if shutdown.load(Ordering::SeqCst) {
                    // Woken by the shutdown connection below (or a
                    // late client racing it); stop accepting.
                    break;
                }
                let reader = BufReader::new(stream.try_clone()?);
                let job_tx = job_tx.clone();
                let shared = shared.clone();
                let shutdown = &shutdown;
                let wake = path.to_path_buf();
                scope.spawn(move || {
                    let served = handle_connection(reader, stream, &job_tx, &shared);
                    drop(job_tx);
                    if let Ok(summary) = served {
                        if summary.shutdown && !shutdown.swap(true, Ordering::SeqCst) {
                            // Unblock the accept loop so it can exit.
                            let _ = UnixStream::connect(&wake);
                        }
                    }
                });
            }
            Ok(())
        });
        let _ = std::fs::remove_file(path);
        result
    }
}

/// Spawns the shared worker pool on `scope` and returns the bounded job
/// sender; workers exit when the last sender clone drops.
fn spawn_workers<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    workers: usize,
    shared: &Shared,
) -> mpsc::SyncSender<Job> {
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(QUEUE_DEPTH);
    let job_rx = Arc::new(Mutex::new(job_rx));
    for _ in 0..workers {
        let job_rx = Arc::clone(&job_rx);
        let shared = shared.clone();
        scope.spawn(move || loop {
            let job = job_rx.lock().expect("job queue lock").recv();
            let Ok(job) = job else { break };
            let waited = job.submitted.elapsed();
            let picked = Instant::now();
            let line = run_job(&job, &shared.cancels);
            {
                let mut stats = shared.stats.lock().expect("stats lock");
                stats.jobs_completed += 1;
                stats.queue_wait_ms.record(waited.as_millis() as u64);
                stats
                    .job_latency_ms
                    .record(picked.elapsed().as_millis() as u64);
            }
            // A dropped reply channel means that connection is gone;
            // keep serving the others.
            let _ = job.reply.send((job.seq, line));
        });
    }
    job_tx
}

/// One connection's intake/emitter pair over the shared pool: reads
/// envelopes from `input` until EOF or `shutdown` and streams response
/// lines to `output` in this connection's submission order.
fn handle_connection<R, W>(
    input: R,
    output: W,
    job_tx: &mpsc::SyncSender<Job>,
    shared: &Shared,
) -> io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    let (line_tx, line_rx) = mpsc::channel::<(u64, String)>();
    std::thread::scope(|scope| {
        let emitter = scope.spawn(move || -> io::Result<()> {
            let mut output = output;
            let mut held: BTreeMap<u64, String> = BTreeMap::new();
            let mut next = 0u64;
            for (seq, line) in line_rx {
                held.insert(seq, line);
                while let Some(line) = held.remove(&next) {
                    writeln!(output, "{line}")?;
                    output.flush()?;
                    next += 1;
                }
            }
            Ok(())
        });

        let mut seq = 0u64;
        let mut summary = ServeSummary {
            submitted: 0,
            shutdown: false,
        };
        let mut intake_err = None;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    intake_err = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            match Envelope::parse_line(&line) {
                Ok(Envelope::Submit {
                    id,
                    spec,
                    seed_base,
                    timeout_ms,
                }) => {
                    summary.submitted += 1;
                    let job = Job {
                        seq,
                        id,
                        spec,
                        seed_base,
                        timeout_ms,
                        submitted: Instant::now(),
                        reply: line_tx.clone(),
                    };
                    // Workers hold the receiver for the service scope's
                    // lifetime, so this only blocks (backpressure),
                    // never fails.
                    job_tx.send(job).expect("worker pool alive");
                    seq += 1;
                }
                Ok(Envelope::Cancel { id }) => {
                    shared.cancels.lock().expect("cancel set lock").insert(id);
                    let _ = line_tx.send((seq, wire::cancel_ack_line(id)));
                    seq += 1;
                }
                Ok(Envelope::Stats { id }) => {
                    let text = shared
                        .stats
                        .lock()
                        .expect("stats lock")
                        .to_report()
                        .to_prometheus();
                    let _ = line_tx.send((seq, wire::stats_line(id, &text)));
                    seq += 1;
                }
                Ok(Envelope::Shutdown) => {
                    summary.shutdown = true;
                    break;
                }
                Err(e) => {
                    let _ = line_tx.send((seq, wire::error_line(None, &e)));
                    seq += 1;
                }
            }
        }
        // Dropping this connection's line sender lets the emitter finish
        // once every in-flight job has replied (each job holds a clone).
        drop(line_tx);
        let emitted = emitter.join().expect("emitter thread");
        emitted?;
        if let Some(e) = intake_err {
            return Err(e);
        }
        Ok(summary)
    })
}

fn cancelled(cancels: &Mutex<HashSet<u64>>, id: u64) -> bool {
    cancels.lock().expect("cancel set lock").contains(&id)
}

fn run_job(job: &Job, cancels: &Mutex<HashSet<u64>>) -> String {
    if cancelled(cancels, job.id) {
        return wire::error_line(Some(job.id), "cancelled");
    }
    let scenario = match parse_any(&job.spec) {
        Ok(scenario) => scenario,
        Err(e) => return wire::error_line(Some(job.id), &e.to_string()),
    };
    match scenario {
        Scenario::Cell(mut spec) => {
            if let Some(base) = job.seed_base {
                spec.seed = derive_seed(base, job.id);
            }
            run_cell(job, &spec, cancels)
        }
        // Grids already fan out via the mint-exp harness; they run
        // whole, so cancel only takes effect while a grid is queued and
        // timeouts do not apply.
        Scenario::Grid(grid) => {
            let rows = grid.run();
            wire::ok_grid_line(job.id, &grid, &rows)
        }
    }
}

fn run_cell(job: &Job, spec: &ScenarioSpec, cancels: &Mutex<HashSet<u64>>) -> String {
    let started = Instant::now();
    let budget = job.timeout_ms.map(Duration::from_millis);
    let mut checkpoint = None;
    let mut stop = CHUNK;
    loop {
        if cancelled(cancels, job.id) {
            return wire::error_line(Some(job.id), "cancelled");
        }
        if let Some(budget) = budget {
            if started.elapsed() >= budget {
                return wire::error_line(
                    Some(job.id),
                    &format!("timed out after {}ms", budget.as_millis()),
                );
            }
        }
        let session = match spec.to_sim(SystemConfig::table6()) {
            Ok(sim) => sim.build(),
            Err(e) => return wire::error_line(Some(job.id), &e.to_string()),
        };
        let sliced = match &checkpoint {
            None => session.run_until(stop),
            Some(at) => session.resume_until(at, stop),
        };
        match sliced {
            Ok(SessionRun::Finished(report)) => {
                return wire::ok_cell_line(job.id, &spec.scheme.label(), &report);
            }
            Ok(SessionRun::Paused(at)) => {
                checkpoint = Some(at);
                stop += CHUNK;
            }
            Err(e) => return wire::error_line(Some(job.id), &e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const CELL: &str = "scheme = mint\nworkload = mcf\nrequests = 400\nseed = 9";
    const GRID: &str =
        "schemes = Baseline MINT\nworkloads = mcf lbm\nrequests = 300\nseed_base = 5";

    fn serve_lines(workers: usize, input: &str) -> (ServeSummary, Vec<String>) {
        let mut out = Vec::new();
        let summary = Service::new()
            .workers(workers)
            .serve(Cursor::new(input.to_string()), &mut out)
            .expect("in-memory serve");
        let text = String::from_utf8(out).expect("utf8 output");
        (summary, text.lines().map(str::to_string).collect())
    }

    #[test]
    fn output_bytes_are_worker_count_invariant_and_match_batch() {
        let input = [
            Envelope::Submit {
                id: 1,
                spec: CELL.to_string(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line(),
            Envelope::Submit {
                id: 2,
                spec: GRID.to_string(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line(),
            Envelope::Submit {
                id: 3,
                spec: CELL.to_string(),
                seed_base: Some(0xABCD),
                timeout_ms: None,
            }
            .to_line(),
        ]
        .join("\n");

        let (summary, lines) = serve_lines(1, &input);
        assert_eq!(
            summary,
            ServeSummary {
                submitted: 3,
                shutdown: false
            },
            "EOF drain without a shutdown envelope"
        );
        assert_eq!(lines.len(), 3);
        for workers in [2, 4] {
            assert_eq!(serve_lines(workers, &input).1, lines, "workers = {workers}");
        }

        // Each line is byte-identical to rendering the batch runner's
        // report through the same wire formatter.
        let Scenario::Cell(cell) = parse_any(CELL).unwrap() else {
            panic!("cell spec");
        };
        let report = cell.run().unwrap();
        assert_eq!(
            lines[0],
            wire::ok_cell_line(1, &cell.scheme.label(), &report)
        );
        let Scenario::Grid(grid) = parse_any(GRID).unwrap() else {
            panic!("grid spec");
        };
        assert_eq!(lines[1], wire::ok_grid_line(2, &grid, &grid.run()));
        let mut derived = cell.clone();
        derived.seed = derive_seed(0xABCD, 3);
        assert_ne!(derived.seed, cell.seed, "seed_base overrides the spec seed");
        let derived_report = derived.run().unwrap();
        assert_eq!(
            lines[2],
            wire::ok_cell_line(3, &derived.scheme.label(), &derived_report)
        );
    }

    #[test]
    fn shutdown_stops_intake_and_cancel_drops_queued_jobs() {
        // Cancelling before the submit is the deterministic way to hit
        // the queued-job cancellation path: the id is already in the
        // cancel set when a worker picks the job up.
        let input = [
            Envelope::Cancel { id: 5 }.to_line(),
            Envelope::Submit {
                id: 5,
                spec: CELL.to_string(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line(),
            Envelope::Shutdown.to_line(),
            Envelope::Submit {
                id: 6,
                spec: CELL.to_string(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line(),
        ]
        .join("\n");
        let (summary, lines) = serve_lines(2, &input);
        assert_eq!(
            summary,
            ServeSummary {
                submitted: 1,
                shutdown: true
            },
            "the post-shutdown submit is never read"
        );
        assert_eq!(lines[0], wire::cancel_ack_line(5));
        assert_eq!(lines[1], wire::error_line(Some(5), "cancelled"));
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn bad_lines_and_bad_specs_report_without_stopping_the_stream() {
        let input = [
            "{\"v\":1,\"id\":1,\"op\":\"conga\"}".to_string(),
            Envelope::Submit {
                id: 2,
                spec: "scheme = mnit\nworkload = mcf".to_string(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line(),
            Envelope::Submit {
                id: 3,
                spec: CELL.to_string(),
                seed_base: None,
                timeout_ms: Some(0),
            }
            .to_line(),
        ]
        .join("\n");
        let (summary, lines) = serve_lines(1, &input);
        assert_eq!(summary.submitted, 2);
        assert_eq!(lines[0], wire::error_line(None, "unknown op \"conga\""));
        assert!(
            lines[1].contains("\"id\":2,\"ok\":false") && lines[1].contains("scenario line 1"),
            "spec errors carry the line number: {}",
            lines[1]
        );
        assert_eq!(
            lines[2],
            wire::error_line(Some(3), "timed out after 0ms"),
            "a zero budget times out deterministically before the first chunk"
        );
    }

    #[test]
    fn telemetry_jobs_carry_stats_and_stats_verb_answers() {
        let telem_cell = format!("{CELL}\ntelemetry = on");
        let input = [
            Envelope::Submit {
                id: 1,
                spec: telem_cell.clone(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line(),
            Envelope::Stats { id: 2 }.to_line(),
        ]
        .join("\n");
        let (summary, lines) = serve_lines(2, &input);
        assert_eq!(summary.submitted, 1);
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"stats\":{\"generated\":"),
            "telemetry job line carries the stats object: {}",
            lines[0]
        );
        // The stats verb answers immediately (before the job finishes,
        // possibly) with a Prometheus payload naming the serve metrics.
        assert!(
            lines[1].contains("\"kind\":\"stats\"")
                && lines[1].contains("mint_serve_jobs_completed"),
            "{}",
            lines[1]
        );

        // A non-telemetry job's line is byte-identical to the pre-stats
        // wire format — the fragment only appears when asked for.
        let (_, plain) = serve_lines(
            1,
            &Envelope::Submit {
                id: 1,
                spec: CELL.to_string(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line(),
        );
        assert!(!plain[0].contains("\"stats\""), "{}", plain[0]);
    }

    #[test]
    fn serve_stats_ledger_renders_prometheus() {
        let mut stats = ServeStats {
            jobs_completed: 3,
            ..ServeStats::default()
        };
        stats.queue_wait_ms.record(0);
        stats.job_latency_ms.record(17);
        let text = stats.to_report().to_prometheus();
        assert!(text.contains("# TYPE mint_serve_jobs_completed counter"));
        assert!(text.contains("mint_serve_jobs_completed 3"));
        assert!(text.contains("mint_serve_queue_wait_ms_count 1"));
        assert!(text.contains("mint_serve_job_latency_ms_sum 17"));
    }

    #[test]
    fn concurrent_unix_connections_share_the_pool_and_keep_streams_apart() {
        let dir = std::env::temp_dir().join(format!("mint-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mint.sock");
        let service = Service::new().workers(2);
        let sock = path.clone();
        let server = std::thread::spawn(move || service.serve_unix(&sock));
        // Wait for the socket to appear.
        let mut tries = 0;
        while !path.exists() && tries < 500 {
            std::thread::sleep(Duration::from_millis(10));
            tries += 1;
        }

        let submit = |id: u64| {
            Envelope::Submit {
                id,
                spec: CELL.to_string(),
                seed_base: None,
                timeout_ms: None,
            }
            .to_line()
        };
        // Two clients submit interleaved jobs concurrently; each must
        // read back exactly its own jobs, in its own submission order.
        let client = |ids: Vec<u64>, path: std::path::PathBuf| {
            std::thread::spawn(move || {
                let mut stream = UnixStream::connect(&path).unwrap();
                for id in &ids {
                    writeln!(stream, "{}", submit(*id)).unwrap();
                }
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let reader = BufReader::new(stream);
                let lines: Vec<String> = reader.lines().map(Result::unwrap).collect();
                (ids, lines)
            })
        };
        let a = client(vec![10, 11], path.clone());
        let b = client(vec![20, 21, 22], path.clone());
        let (ids_a, lines_a) = a.join().unwrap();
        let (ids_b, lines_b) = b.join().unwrap();
        let expected_line = {
            let Scenario::Cell(cell) = parse_any(CELL).unwrap() else {
                panic!("cell spec");
            };
            let report = cell.run().unwrap();
            move |id: u64| wire::ok_cell_line(id, "MINT", &report)
        };
        assert_eq!(
            lines_a,
            ids_a.iter().map(|&i| expected_line(i)).collect::<Vec<_>>()
        );
        assert_eq!(
            lines_b,
            ids_b.iter().map(|&i| expected_line(i)).collect::<Vec<_>>()
        );

        // Shutdown from a third connection stops the service.
        let mut stream = UnixStream::connect(&path).unwrap();
        writeln!(stream, "{}", Envelope::Shutdown.to_line()).unwrap();
        drop(stream);
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
