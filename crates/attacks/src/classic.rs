//! Classic Rowhammer patterns: single-sided, double-sided, many-sided and
//! Half-Double.

use crate::AccessPattern;
use mint_dram::RowId;

/// The classic single-sided attack (§V-C): hammer one row in every slot.
///
/// MINT is *guaranteed* to select this row whenever it fills the window, so
/// the attack caps out at `MaxACT` activations per tREFI on each victim.
///
/// # Examples
///
/// ```
/// use mint_attacks::{AccessPattern, SingleSided};
/// use mint_dram::RowId;
///
/// let mut a = SingleSided::new(RowId(500));
/// assert_eq!(a.next_act(0, 0), Some(RowId(500)));
/// assert_eq!(a.next_act(9, 72), Some(RowId(500)));
/// assert_eq!(a.target_victims(), vec![RowId(499), RowId(501)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleSided {
    row: RowId,
}

impl SingleSided {
    /// Attacks the victims of `row`.
    #[must_use]
    pub fn new(row: RowId) -> Self {
        Self { row }
    }

    /// The hammered row.
    #[must_use]
    pub fn row(&self) -> RowId {
        self.row
    }
}

impl AccessPattern for SingleSided {
    fn next_act(&mut self, _refi: u64, _slot: u32) -> Option<RowId> {
        Some(self.row)
    }

    fn name(&self) -> &'static str {
        "single-sided"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.row.neighbours(1).collect()
    }

    fn reset(&mut self) {}
}

/// The classic double-sided attack (§V-C): alternate the two rows flanking a
/// victim. MINT is guaranteed to mitigate one of the pair per full window,
/// refreshing the shared victim either way (§V-F: the victim enjoys the
/// *sum* of both aggressors' mitigation chances).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleSided {
    victim: RowId,
}

impl DoubleSided {
    /// Attacks `victim` by hammering `victim − 1` and `victim + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `victim` is row 0 (no lower aggressor exists).
    #[must_use]
    pub fn new(victim: RowId) -> Self {
        assert!(
            victim.0 >= 1,
            "double-sided needs an aggressor below the victim"
        );
        Self { victim }
    }

    /// The sandwiched victim row.
    #[must_use]
    pub fn victim(&self) -> RowId {
        self.victim
    }

    /// The aggressor pair.
    #[must_use]
    pub fn aggressors(&self) -> (RowId, RowId) {
        (RowId(self.victim.0 - 1), RowId(self.victim.0 + 1))
    }
}

impl AccessPattern for DoubleSided {
    fn next_act(&mut self, refi: u64, slot: u32) -> Option<RowId> {
        let (lo, hi) = self.aggressors();
        // Alternate by global slot parity.
        if (u64::from(slot) + refi * 73) % 2 == 0 {
            Some(lo)
        } else {
            Some(hi)
        }
    }

    fn name(&self) -> &'static str {
        "double-sided"
    }

    fn target_victims(&self) -> Vec<RowId> {
        vec![self.victim]
    }

    fn reset(&mut self) {}
}

/// TRRespass-style many-sided attack (§II-F): round-robin over `k`
/// aggressors spaced to avoid shared victims. Designed to exhaust the few
/// entries of vendor-TRR trackers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManySided {
    base: RowId,
    k: u32,
    cursor: u32,
}

impl ManySided {
    /// `k` aggressors starting at `base`, spaced by [`crate::ROW_STRIDE`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(base: RowId, k: u32) -> Self {
        assert!(k > 0, "need at least one aggressor");
        Self { base, k, cursor: 0 }
    }

    /// The aggressor rows.
    #[must_use]
    pub fn aggressors(&self) -> Vec<RowId> {
        (0..self.k)
            .map(|i| RowId(self.base.0 + i * crate::ROW_STRIDE))
            .collect()
    }
}

impl AccessPattern for ManySided {
    fn next_act(&mut self, _refi: u64, _slot: u32) -> Option<RowId> {
        let row = RowId(self.base.0 + (self.cursor % self.k) * crate::ROW_STRIDE);
        self.cursor = (self.cursor + 1) % self.k;
        Some(row)
    }

    fn name(&self) -> &'static str {
        "many-sided"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.aggressors()
            .into_iter()
            .flat_map(|r| r.neighbours(1))
            .collect()
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Half-Double (§V-E, Fig 12a): a plain single-sided hammer of row `C`,
/// but the rows the attacker actually wants to flip are at distance 2
/// (`A = C − 2`, `E = C + 2`) — they are hammered *by the defence's own
/// victim refreshes* of `B` and `D`, which the tracker cannot observe.
///
/// Against MINT-without-transitive-slot this yields 8192 silent hammers per
/// tREFW; MINT's SAN = 0 transitive slot is the countermeasure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfDouble {
    centre: RowId,
}

impl HalfDouble {
    /// Hammers `centre`, targeting `centre ± 2`.
    ///
    /// # Panics
    ///
    /// Panics if `centre` has no distance-2 row below it.
    #[must_use]
    pub fn new(centre: RowId) -> Self {
        assert!(centre.0 >= 2, "Half-Double needs two rows below the centre");
        Self { centre }
    }

    /// The hammered (decoy-aggressor) row.
    #[must_use]
    pub fn centre(&self) -> RowId {
        self.centre
    }
}

impl AccessPattern for HalfDouble {
    fn next_act(&mut self, _refi: u64, _slot: u32) -> Option<RowId> {
        Some(self.centre)
    }

    fn name(&self) -> &'static str {
        "half-double"
    }

    fn target_victims(&self) -> Vec<RowId> {
        vec![RowId(self.centre.0 - 2), RowId(self.centre.0 + 2)]
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sided_constant_stream() {
        let mut a = SingleSided::new(RowId(9));
        for refi in 0..5 {
            for slot in 0..73 {
                assert_eq!(a.next_act(refi, slot), Some(RowId(9)));
            }
        }
        assert_eq!(a.name(), "single-sided");
    }

    #[test]
    fn double_sided_alternates_and_balances() {
        let mut a = DoubleSided::new(RowId(50));
        let mut lo = 0i32;
        let mut hi = 0i32;
        for slot in 0..73 {
            match a.next_act(0, slot) {
                Some(RowId(49)) => lo += 1,
                Some(RowId(51)) => hi += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((lo - hi).abs() <= 1, "lo {lo} hi {hi}");
        assert_eq!(a.target_victims(), vec![RowId(50)]);
    }

    #[test]
    fn double_sided_alternation_continues_across_refis() {
        let mut a = DoubleSided::new(RowId(50));
        // 73 slots is odd, so the phase flips every tREFI; both rows keep
        // receiving close-to-equal hammering over many intervals.
        let mut counts = [0u32; 2];
        for refi in 0..100 {
            for slot in 0..73 {
                match a.next_act(refi, slot) {
                    Some(RowId(49)) => counts[0] += 1,
                    Some(RowId(51)) => counts[1] += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        let diff = counts[0].abs_diff(counts[1]);
        assert!(diff <= 1, "imbalance {diff}");
    }

    #[test]
    #[should_panic(expected = "aggressor below")]
    fn double_sided_rejects_row_zero_victim() {
        let _ = DoubleSided::new(RowId(0));
    }

    #[test]
    fn many_sided_round_robin_with_stride() {
        let mut a = ManySided::new(RowId(100), 3);
        assert_eq!(a.next_act(0, 0), Some(RowId(100)));
        assert_eq!(a.next_act(0, 1), Some(RowId(104)));
        assert_eq!(a.next_act(0, 2), Some(RowId(108)));
        assert_eq!(a.next_act(0, 3), Some(RowId(100)));
        a.reset();
        assert_eq!(a.next_act(0, 0), Some(RowId(100)));
    }

    #[test]
    fn many_sided_aggressors_share_no_victims() {
        let a = ManySided::new(RowId(100), 10);
        let victims = a.target_victims();
        let mut sorted = victims.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), victims.len(), "victims must be disjoint");
    }

    #[test]
    fn half_double_targets_distance_two() {
        let a = HalfDouble::new(RowId(30));
        assert_eq!(a.target_victims(), vec![RowId(28), RowId(32)]);
        assert_eq!(a.centre(), RowId(30));
    }

    #[test]
    #[should_panic(expected = "two rows below")]
    fn half_double_rejects_edge() {
        let _ = HalfDouble::new(RowId(1));
    }
}
