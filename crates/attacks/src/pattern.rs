//! The paper's worst-case pattern family for MINT (§V-D).

use crate::{AccessPattern, ROW_STRIDE};
use mint_dram::RowId;

/// Pattern-1: single-row, single-copy (§V-D).
///
/// One activation of the attack row per tREFI; the other 72 slots stay idle
/// (equivalently: decoys). Over a tREFW the row receives 8192 activations,
/// each escaping MINT's selection with probability `1 − 1/74`. MinTRH 2461.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern1 {
    row: RowId,
}

impl Pattern1 {
    /// Attacks the victims of `row` with one ACT per tREFI.
    #[must_use]
    pub fn new(row: RowId) -> Self {
        Self { row }
    }
}

impl AccessPattern for Pattern1 {
    fn next_act(&mut self, _refi: u64, slot: u32) -> Option<RowId> {
        (slot == 0).then_some(self.row)
    }

    fn name(&self) -> &'static str {
        "pattern-1"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.row.neighbours(1).collect()
    }

    fn reset(&mut self) {}
}

/// Pattern-2: multi-row, single-copy (§V-D, Fig 10) — the paper's
/// worst-case direct attack on MINT at `k = MaxACT`.
///
/// `k` attack rows, each activated at most once per tREFI. For `k ≤ M`
/// every row is hit every tREFI (filling `k` of the `M` slots); for `k > M`
/// the rows rotate across tREFIs (the "multi-tREFI" regime where per-row
/// activation rates drop and the MinTRH falls again).
///
/// Rows are spaced [`ROW_STRIDE`] apart so no two share a victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern2 {
    base: RowId,
    k: u32,
    max_act: u32,
}

impl Pattern2 {
    /// `k` attack rows starting at `base`, in windows of `max_act` slots.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `max_act == 0`.
    #[must_use]
    pub fn new(base: RowId, k: u32, max_act: u32) -> Self {
        assert!(k > 0, "need at least one attack row");
        assert!(max_act > 0, "window must have at least one slot");
        Self { base, k, max_act }
    }

    /// The attack rows.
    #[must_use]
    pub fn rows(&self) -> Vec<RowId> {
        (0..self.k)
            .map(|i| RowId(self.base.0 + i * ROW_STRIDE))
            .collect()
    }

    /// How many tREFI one full rotation over all `k` rows takes.
    #[must_use]
    pub fn rounds_per_sweep(&self) -> u32 {
        self.k.div_ceil(self.max_act)
    }
}

impl AccessPattern for Pattern2 {
    fn next_act(&mut self, refi: u64, slot: u32) -> Option<RowId> {
        // Global slot index across the sweep selects which row comes next;
        // each row is used exactly once per sweep.
        let sweep_len = u64::from(self.rounds_per_sweep()) * u64::from(self.max_act);
        let pos_in_sweep =
            (refi % u64::from(self.rounds_per_sweep())) * u64::from(self.max_act) + u64::from(slot);
        let _ = sweep_len;
        if pos_in_sweep < u64::from(self.k) {
            Some(RowId(self.base.0 + (pos_in_sweep as u32) * ROW_STRIDE))
        } else {
            None // idle slot: fewer rows than slots in this sweep position
        }
    }

    fn name(&self) -> &'static str {
        "pattern-2"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.rows()
            .into_iter()
            .flat_map(|r| r.neighbours(1))
            .collect()
    }

    fn reset(&mut self) {}
}

/// Pattern-3: multi-row, multi-copy (§V-D, Fig 11).
///
/// `k` attack rows, each activated `c` times per tREFI (`k·c ≤ M`). A row
/// with `c` copies is `c`× more likely to be selected by MINT each window,
/// which is why 4+ copies collapse the attack (Fig 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern3 {
    base: RowId,
    k: u32,
    copies: u32,
    max_act: u32,
}

impl Pattern3 {
    /// `k` rows × `copies` activations per tREFI.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or if `k·copies > max_act`.
    #[must_use]
    pub fn new(base: RowId, k: u32, copies: u32, max_act: u32) -> Self {
        assert!(
            k > 0 && copies > 0 && max_act > 0,
            "parameters must be non-zero"
        );
        assert!(
            k * copies <= max_act,
            "k×c = {} must fit in one window of {max_act}",
            k * copies
        );
        Self {
            base,
            k,
            copies,
            max_act,
        }
    }

    /// The attack rows.
    #[must_use]
    pub fn rows(&self) -> Vec<RowId> {
        (0..self.k)
            .map(|i| RowId(self.base.0 + i * ROW_STRIDE))
            .collect()
    }
}

impl AccessPattern for Pattern3 {
    fn next_act(&mut self, _refi: u64, slot: u32) -> Option<RowId> {
        // Interleave copies round-robin (A B C A B C ...) rather than
        // back-to-back, which spreads each row's copies across the window.
        let used = self.k * self.copies;
        if slot >= used {
            return None;
        }
        Some(RowId(self.base.0 + (slot % self.k) * ROW_STRIDE))
    }

    fn name(&self) -> &'static str {
        "pattern-3"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.rows()
            .into_iter()
            .flat_map(|r| r.neighbours(1))
            .collect()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn histogram(p: &mut dyn AccessPattern, refis: u64, max_act: u32) -> HashMap<RowId, u64> {
        let mut h = HashMap::new();
        for refi in 0..refis {
            for slot in 0..max_act {
                if let Some(r) = p.next_act(refi, slot) {
                    *h.entry(r).or_insert(0) += 1;
                }
            }
        }
        h
    }

    #[test]
    fn pattern1_one_act_per_refi() {
        let mut p = Pattern1::new(RowId(10));
        let h = histogram(&mut p, 100, 73);
        assert_eq!(h.len(), 1);
        assert_eq!(h[&RowId(10)], 100);
    }

    #[test]
    fn pattern2_k73_fills_window_once_per_row() {
        let mut p = Pattern2::new(RowId(100), 73, 73);
        let h = histogram(&mut p, 8, 73);
        assert_eq!(h.len(), 73);
        assert!(
            h.values().all(|&c| c == 8),
            "each row exactly once per tREFI"
        );
    }

    #[test]
    fn pattern2_small_k_leaves_idle_slots() {
        let mut p = Pattern2::new(RowId(100), 10, 73);
        let h = histogram(&mut p, 4, 73);
        assert_eq!(h.len(), 10);
        assert!(h.values().all(|&c| c == 4));
    }

    #[test]
    fn pattern2_multi_trefi_rotates() {
        // k = 146 = 2 × 73: each row hit once every two tREFI.
        let mut p = Pattern2::new(RowId(100), 146, 73);
        assert_eq!(p.rounds_per_sweep(), 2);
        let h = histogram(&mut p, 10, 73);
        assert_eq!(h.len(), 146);
        assert!(h.values().all(|&c| c == 5), "once per two tREFI");
    }

    #[test]
    fn pattern2_rows_disjoint_victims() {
        let p = Pattern2::new(RowId(100), 73, 73);
        let mut v = p.target_victims();
        let n = v.len();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), n);
    }

    #[test]
    fn pattern3_copies_per_row() {
        let mut p = Pattern3::new(RowId(100), 24, 3, 73);
        let h = histogram(&mut p, 5, 73);
        assert_eq!(h.len(), 24);
        assert!(h.values().all(|&c| c == 15), "3 copies × 5 tREFI");
    }

    #[test]
    fn pattern3_copies_interleaved_not_adjacent() {
        let mut p = Pattern3::new(RowId(100), 3, 2, 73);
        let seq: Vec<Option<RowId>> = (0..6).map(|s| p.next_act(0, s)).collect();
        assert_eq!(
            seq,
            vec![
                Some(RowId(100)),
                Some(RowId(104)),
                Some(RowId(108)),
                Some(RowId(100)),
                Some(RowId(104)),
                Some(RowId(108)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "must fit in one window")]
    fn pattern3_overflow_rejected() {
        let _ = Pattern3::new(RowId(0), 30, 3, 73);
    }

    #[test]
    fn pattern1_victims() {
        let p = Pattern1::new(RowId(10));
        assert_eq!(p.target_victims(), vec![RowId(9), RowId(11)]);
    }
}
