//! Blacksmith-style non-uniform frequency patterns (paper §II-F / §III-C).

use crate::{AccessPattern, ROW_STRIDE};
use mint_dram::RowId;
use mint_rng::{Rng64, SplitMix64};

/// Configuration of a [`Blacksmith`] pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlacksmithConfig {
    /// Number of aggressor pairs in the fuzzed pattern.
    pub pairs: u32,
    /// Slots per tREFI (MaxACT).
    pub max_act: u32,
    /// Seed for the fuzzer that assigns frequency/phase/amplitude.
    pub seed: u64,
}

impl Default for BlacksmithConfig {
    fn default() -> Self {
        Self {
            pairs: 12,
            max_act: 73,
            seed: 0xB1AC_6161,
        }
    }
}

/// A Blacksmith-style pattern: aggressor pairs hammered with fuzzer-chosen
/// *frequency*, *phase* and *amplitude*, synchronised to the refresh
/// interval (the attack's signature move — §III-C notes that Blacksmith uses
/// refresh-interval synchronisation to park its hammers on a tracker's most
/// vulnerable position).
///
/// Each pair `i` is assigned:
/// * `period_i`  — hammer every `period_i` tREFI (frequency),
/// * `phase_i`   — starting slot offset inside the tREFI,
/// * `amplitude_i` — back-to-back double-sided rounds per visit.
///
/// Unused slots fall to a rotating set of decoy rows, mimicking the original
/// attack's filler accesses. The assignment is deterministic in the seed.
///
/// # Examples
///
/// ```
/// use mint_attacks::{AccessPattern, Blacksmith, BlacksmithConfig};
///
/// let mut b = Blacksmith::new(BlacksmithConfig::default());
/// // A full tREFI always produces MaxACT activations (no idle slots).
/// let acts: Vec<_> = (0..73).map(|s| b.next_act(0, s)).collect();
/// assert!(acts.iter().all(Option::is_some));
/// ```
#[derive(Debug, Clone)]
pub struct Blacksmith {
    config: BlacksmithConfig,
    /// Per-pair (low_aggressor, period, phase, amplitude).
    pairs: Vec<(RowId, u32, u32, u32)>,
    /// Precomputed slot schedule for one hyper-period of tREFIs.
    schedule: Vec<Vec<RowId>>,
}

impl Blacksmith {
    /// Fuzzes a pattern from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `pairs == 0` or `max_act == 0`.
    #[must_use]
    pub fn new(config: BlacksmithConfig) -> Self {
        assert!(config.pairs > 0, "need at least one aggressor pair");
        assert!(config.max_act > 0, "window must have at least one slot");
        let mut rng = SplitMix64::new(config.seed);
        let mut pairs = Vec::with_capacity(config.pairs as usize);
        for i in 0..config.pairs {
            // Pairs are double-sided: rows (base, base+2) with victim between.
            let base = RowId(1000 + i * (ROW_STRIDE + 2));
            let period = 1 + rng.gen_range_u32(4); // every 1..=4 tREFI
            let phase = rng.gen_range_u32(config.max_act);
            let amplitude = 1 + rng.gen_range_u32(3); // 1..=3 rounds per visit
            pairs.push((base, period, phase, amplitude));
        }
        let hyper: u32 = pairs.iter().map(|p| p.1).fold(1, lcm);
        let mut schedule = Vec::with_capacity(hyper as usize);
        for refi in 0..hyper {
            schedule.push(Self::build_refi(&pairs, refi, config.max_act));
        }
        Self {
            config,
            pairs,
            schedule,
        }
    }

    fn build_refi(pairs: &[(RowId, u32, u32, u32)], refi: u32, max_act: u32) -> Vec<RowId> {
        let mut slots: Vec<Option<RowId>> = vec![None; max_act as usize];
        for &(base, period, phase, amplitude) in pairs {
            if refi % period != 0 {
                continue;
            }
            // `amplitude` double-sided rounds starting at `phase` (wrapping).
            let mut s = phase;
            for _ in 0..amplitude {
                for agg in [base, RowId(base.0 + 2)] {
                    let idx = (s % max_act) as usize;
                    if slots[idx].is_none() {
                        slots[idx] = Some(agg);
                    }
                    s += 1;
                }
            }
        }
        // Fillers: rotate decoy rows through the leftover slots. The decoy
        // region sits below 64K so the pattern fits any bank size used in
        // this repository.
        let mut decoy = 0u32;
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    decoy += 1;
                    RowId(60_000 + (decoy % 64) * ROW_STRIDE)
                })
            })
            .collect()
    }

    /// The configuration the pattern was fuzzed from.
    #[must_use]
    pub fn config(&self) -> &BlacksmithConfig {
        &self.config
    }

    /// The fuzzed aggressor pairs as (low, high) rows.
    #[must_use]
    pub fn aggressor_pairs(&self) -> Vec<(RowId, RowId)> {
        self.pairs
            .iter()
            .map(|&(b, ..)| (b, RowId(b.0 + 2)))
            .collect()
    }
}

fn lcm(a: u32, b: u32) -> u32 {
    a / gcd(a, b) * b
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl AccessPattern for Blacksmith {
    fn next_act(&mut self, refi: u64, slot: u32) -> Option<RowId> {
        let r = (refi % self.schedule.len() as u64) as usize;
        self.schedule[r].get(slot as usize).copied()
    }

    fn name(&self) -> &'static str {
        "blacksmith"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.pairs.iter().map(|&(b, ..)| RowId(b.0 + 1)).collect()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Blacksmith::new(BlacksmithConfig::default());
        let mut b = Blacksmith::new(BlacksmithConfig::default());
        for refi in 0..20 {
            for slot in 0..73 {
                assert_eq!(a.next_act(refi, slot), b.next_act(refi, slot));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Blacksmith::new(BlacksmithConfig::default());
        let mut b = Blacksmith::new(BlacksmithConfig {
            seed: 42,
            ..BlacksmithConfig::default()
        });
        let sa: Vec<_> = (0..73).map(|s| a.next_act(0, s)).collect();
        let sb: Vec<_> = (0..73).map(|s| b.next_act(0, s)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn all_slots_filled() {
        let mut b = Blacksmith::new(BlacksmithConfig::default());
        for refi in 0..8 {
            for slot in 0..73 {
                assert!(b.next_act(refi, slot).is_some());
            }
        }
    }

    #[test]
    fn victims_are_between_pairs() {
        let b = Blacksmith::new(BlacksmithConfig::default());
        let victims = b.target_victims();
        let pairs = b.aggressor_pairs();
        assert_eq!(victims.len(), pairs.len());
        for ((lo, hi), v) in pairs.iter().zip(&victims) {
            assert_eq!(v.0, lo.0 + 1);
            assert_eq!(hi.0, lo.0 + 2);
        }
    }

    #[test]
    fn schedule_repeats_with_hyper_period() {
        let mut b = Blacksmith::new(BlacksmithConfig::default());
        let hyper = b.schedule.len() as u64;
        for slot in 0..73 {
            assert_eq!(b.next_act(0, slot), b.next_act(hyper, slot));
        }
    }

    #[test]
    #[should_panic(expected = "at least one aggressor pair")]
    fn zero_pairs_rejected() {
        let _ = Blacksmith::new(BlacksmithConfig {
            pairs: 0,
            ..BlacksmithConfig::default()
        });
    }
}
