//! ADA: the adaptive attack on MINT+DMQ (paper Appendix B).

use crate::{AccessPattern, ROW_STRIDE};
use mint_dram::RowId;

/// The Adaptive Attack (ADA) of Appendix B, targeting MINT+DMQ under
/// refresh postponement.
///
/// The best attack on MINT alone is pattern-2 (one ACT per row per tREFI,
/// maximum stealth); the best attack on the DMQ is the opposite — hammer one
/// row continuously so it accumulates activations while its selection waits
/// in the FIFO. ADA morphs between them at a predefined **morphing point**
/// (MP, measured in tREFI):
///
/// * `refi < MP`: pattern-2 over `k` rows;
/// * `refi ≥ MP`: all slots hammer one *hopeful* row (by default the first
///   attack row; the analysis in `mint_analysis::ada` accounts for the
///   probability that some row reached a useful count), for `burst` tREFI
///   (5 = the postponement batch), after which the cycle restarts.
///
/// A successful morph adds up to `5 × MaxACT = 365` activations to a row
/// beyond what pattern-2 alone could (Fig 19: `A → A + 365`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveAttack {
    base: RowId,
    k: u32,
    max_act: u32,
    morph_point: u64,
    burst: u64,
    focus_index: u32,
}

impl AdaptiveAttack {
    /// Creates an ADA with `k` pattern-2 rows starting at `base`, morphing
    /// at tREFI `morph_point` into a `burst`-tREFI hammer of row
    /// `base + focus_index × ROW_STRIDE`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `max_act == 0`, `burst == 0` or
    /// `focus_index >= k`.
    #[must_use]
    pub fn new(
        base: RowId,
        k: u32,
        max_act: u32,
        morph_point: u64,
        burst: u64,
        focus_index: u32,
    ) -> Self {
        assert!(
            k > 0 && max_act > 0 && burst > 0,
            "parameters must be non-zero"
        );
        assert!(focus_index < k, "focus row must be one of the attack rows");
        Self {
            base,
            k,
            max_act,
            morph_point,
            burst,
            focus_index,
        }
    }

    /// The paper's default shape: 73 rows, MaxACT 73, burst of 5 tREFI
    /// (one full postponement batch), focusing the first row.
    #[must_use]
    pub fn paper_default(base: RowId, morph_point: u64) -> Self {
        Self::new(base, 73, 73, morph_point, 5, 0)
    }

    /// The row hammered after the morphing point.
    #[must_use]
    pub fn focus_row(&self) -> RowId {
        RowId(self.base.0 + self.focus_index * ROW_STRIDE)
    }

    /// Length of one full attack cycle in tREFI.
    #[must_use]
    pub fn cycle_refis(&self) -> u64 {
        self.morph_point + self.burst
    }
}

impl AccessPattern for AdaptiveAttack {
    fn next_act(&mut self, refi: u64, slot: u32) -> Option<RowId> {
        let phase = refi % self.cycle_refis();
        if phase < self.morph_point {
            // Pattern-2 phase: row per slot, rotating if k > max_act.
            let sweep = self.k.div_ceil(self.max_act);
            let pos = (phase % u64::from(sweep)) * u64::from(self.max_act) + u64::from(slot);
            if pos < u64::from(self.k) {
                Some(RowId(self.base.0 + (pos as u32) * ROW_STRIDE))
            } else {
                None
            }
        } else {
            // Morphed phase: flood the hopeful row.
            Some(self.focus_row())
        }
    }

    fn name(&self) -> &'static str {
        "ADA"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.focus_row().neighbours(1).collect()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern2_phase_then_flood() {
        let mut a = AdaptiveAttack::new(RowId(100), 73, 73, 3, 2, 0);
        // Phase 0..3: pattern-2 (distinct row per slot).
        let first: Vec<_> = (0..3).map(|s| a.next_act(0, s)).collect();
        assert_eq!(
            first,
            vec![Some(RowId(100)), Some(RowId(104)), Some(RowId(108))]
        );
        // Phase 3..5: flood the focus row.
        for refi in 3..5u64 {
            for slot in 0..73 {
                assert_eq!(a.next_act(refi, slot), Some(RowId(100)));
            }
        }
        // Cycle restarts at refi 5.
        assert_eq!(a.next_act(5, 1), Some(RowId(104)));
    }

    #[test]
    fn focus_row_selection() {
        let a = AdaptiveAttack::new(RowId(100), 73, 73, 10, 5, 7);
        assert_eq!(a.focus_row(), RowId(100 + 7 * ROW_STRIDE));
        assert_eq!(a.cycle_refis(), 15);
    }

    #[test]
    fn paper_default_shape() {
        let a = AdaptiveAttack::paper_default(RowId(0), 1400);
        assert_eq!(a.cycle_refis(), 1405);
        assert_eq!(a.focus_row(), RowId(0));
    }

    #[test]
    fn morph_adds_365_flood_acts_per_cycle() {
        let mut a = AdaptiveAttack::paper_default(RowId(0), 100);
        let mut flood = 0u64;
        for refi in 0..a.cycle_refis() {
            for slot in 0..73 {
                if a.next_act(refi, slot) == Some(RowId(0)) && refi >= 100 {
                    flood += 1;
                }
            }
        }
        assert_eq!(flood, 365);
    }

    #[test]
    #[should_panic(expected = "focus row")]
    fn focus_out_of_range_rejected() {
        let _ = AdaptiveAttack::new(RowId(0), 5, 73, 10, 5, 5);
    }
}
