//! Rowhammer attack pattern generators.
//!
//! Every attack the paper analyses (and the classics it dismisses) is
//! implemented as an [`AccessPattern`]: a deterministic-given-seed stream of
//! demand activations indexed by `(tREFI index, slot)`. The Monte-Carlo
//! engine in `mint-sim` pulls one slot at a time, so patterns can express
//! idle slots (pattern-1 uses a single activation per tREFI) and
//! tREFI-phase-dependent behaviour (the §VI-B postponement attack).
//!
//! Implemented patterns:
//!
//! * [`SingleSided`], [`DoubleSided`] — the classics (§V-C): guaranteed to
//!   lose against MINT when they use every slot.
//! * [`Pattern1`] — single-row/single-copy, one ACT per tREFI (§V-D).
//! * [`Pattern2`] — multi-row/single-copy, `k` rows per tREFI, including the
//!   multi-tREFI regime `k > MaxACT` (Fig 10).
//! * [`Pattern3`] — multi-row/multi-copy, `c` copies per row (Fig 11).
//! * [`ManySided`] — TRRespass-style round-robin over many aggressors.
//! * [`Blacksmith`] — frequency/phase/amplitude fuzzer patterns,
//!   tREFI-synchronised (§II-F).
//! * [`HalfDouble`] — a single-sided hammer whose real targets are the
//!   distance-2 rows reached by the mitigations themselves (§V-E).
//! * [`PostponementDecoy`] — the §VI-B deterministic attack on low-cost
//!   trackers under refresh postponement (decoys fill the visible window,
//!   the victim absorbs the invisible 4×MaxACT).
//! * [`AdaptiveAttack`] — ADA (Appendix B): pattern-2 until a morphing
//!   point, then repeated hammering of one hopeful row to ride the DMQ.

mod ada;
mod blacksmith;
mod classic;
mod pattern;
mod postpone;

pub use ada::AdaptiveAttack;
pub use blacksmith::{Blacksmith, BlacksmithConfig};
pub use classic::{DoubleSided, HalfDouble, ManySided, SingleSided};
pub use pattern::{Pattern1, Pattern2, Pattern3};
pub use postpone::PostponementDecoy;

use mint_dram::RowId;

/// A stream of demand activations, addressed by refresh-interval index and
/// slot within the interval.
///
/// `None` means the attacker leaves the slot idle (for security analysis an
/// idle slot is equivalent to a decoy activation — paper §V-A — but
/// distinguishing them lets the simulator count real activations).
pub trait AccessPattern {
    /// The activation for `slot` (0-based, `< MaxACT`) of tREFI `refi`.
    fn next_act(&mut self, refi: u64, slot: u32) -> Option<RowId>;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// The victim rows whose hammer counts the attack is trying to drive to
    /// the threshold (used by the simulator for focused reporting; the bank
    /// model checks *every* row regardless).
    fn target_victims(&self) -> Vec<RowId>;

    /// Restores the initial state (patterns with internal phase).
    fn reset(&mut self);
}

/// Spacing between attack rows used by multi-row patterns so that no two
/// aggressors share a victim (keeps patterns spatially uncorrelated, §V-F).
pub const ROW_STRIDE: u32 = 4;

/// A named, re-constructible attack pattern: sweep grids (the `mint-exp`
/// fan-outs in `mint-redteam` and `mint-bench`) need a fresh
/// [`AccessPattern`] instance per cell, so a spec carries the factory
/// rather than a pattern value.
pub struct PatternSpec {
    name: &'static str,
    factory: Box<dyn Fn() -> Box<dyn AccessPattern> + Send + Sync>,
}

impl PatternSpec {
    /// Wraps a pattern factory under a stable display name.
    #[must_use]
    pub fn new(
        name: &'static str,
        factory: impl Fn() -> Box<dyn AccessPattern> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name,
            factory: Box::new(factory),
        }
    }

    /// The display name (stable across runs; used as the JSON/table key).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds a fresh instance of the pattern.
    #[must_use]
    pub fn build(&self) -> Box<dyn AccessPattern> {
        (self.factory)()
    }
}

impl std::fmt::Debug for PatternSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PatternSpec({})", self.name)
    }
}

/// The canonical red-team grid against a device with `max_act` slots per
/// tREFI: the paper's worst-case direct attacks on MINT (§V-D), chosen so
/// that no pattern re-activates the row that is already open in the row
/// buffer within a tREFI (every slot lands as a genuine ACT when replayed
/// through the command-level channel — consecutive same-row slots would
/// collapse into row-buffer hits there).
///
/// * `pattern-1` — one ACT of a single row per tREFI (MinTRH 2461).
/// * `pattern-2` — `max_act` rows, one ACT each per tREFI (the MinTRH
///   peak at `k = MaxACT`).
/// * `pattern-2-multi` — `2·max_act` rows rotating across tREFIs (the
///   multi-tREFI regime of Fig 10).
/// * `pattern-3` — `max_act/3` rows × 3 interleaved copies (Fig 11).
///
/// Rows start at `base` and stay within `base + 2·max_act·ROW_STRIDE`.
///
/// # Panics
///
/// Panics if `max_act < 3` (pattern-3 needs room for its copies).
#[must_use]
pub fn redteam_patterns(base: RowId, max_act: u32) -> Vec<PatternSpec> {
    assert!(max_act >= 3, "need at least 3 slots per tREFI");
    vec![
        PatternSpec::new("pattern-1", move || Box::new(Pattern1::new(base))),
        PatternSpec::new("pattern-2", move || {
            Box::new(Pattern2::new(base, max_act, max_act))
        }),
        PatternSpec::new("pattern-2-multi", move || {
            Box::new(Pattern2::new(base, 2 * max_act, max_act))
        }),
        PatternSpec::new("pattern-3", move || {
            Box::new(Pattern3::new(base, max_act / 3, 3, max_act))
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redteam_grid_builds_fresh_deterministic_patterns() {
        let specs = redteam_patterns(RowId(4000), 73);
        assert_eq!(specs.len(), 4);
        let names: Vec<&str> = specs.iter().map(PatternSpec::name).collect();
        assert_eq!(
            names,
            vec!["pattern-1", "pattern-2", "pattern-2-multi", "pattern-3"]
        );
        for spec in &specs {
            let mut a = spec.build();
            let mut b = spec.build();
            let mut acts = 0u32;
            for refi in 0..4u64 {
                let mut last: Option<mint_dram::RowId> = None;
                for slot in 0..73u32 {
                    let x = a.next_act(refi, slot);
                    assert_eq!(x, b.next_act(refi, slot), "{} diverged", spec.name());
                    if let Some(row) = x {
                        acts += 1;
                        assert_ne!(
                            Some(row),
                            last,
                            "{}: consecutive slots must change rows",
                            spec.name()
                        );
                        last = Some(row);
                    }
                }
            }
            assert!(acts > 0, "{} must activate something", spec.name());
            assert!(!spec.build().target_victims().is_empty());
        }
    }

    /// All patterns must be deterministic: two fresh instances produce the
    /// same stream.
    #[test]
    fn patterns_are_deterministic() {
        type MakePattern = Box<dyn Fn() -> Box<dyn AccessPattern>>;
        let make: Vec<(&str, MakePattern)> = vec![
            (
                "single",
                Box::new(|| Box::new(SingleSided::new(RowId(100)))),
            ),
            (
                "double",
                Box::new(|| Box::new(DoubleSided::new(RowId(100)))),
            ),
            ("p1", Box::new(|| Box::new(Pattern1::new(RowId(100))))),
            (
                "p2",
                Box::new(|| Box::new(Pattern2::new(RowId(100), 73, 73))),
            ),
            (
                "p3",
                Box::new(|| Box::new(Pattern3::new(RowId(100), 24, 3, 73))),
            ),
            (
                "many",
                Box::new(|| Box::new(ManySided::new(RowId(100), 16))),
            ),
            (
                "postpone",
                Box::new(|| Box::new(PostponementDecoy::new(RowId(5000), RowId(100), 73, 5))),
            ),
        ];
        for (name, ctor) in make {
            let mut a = ctor();
            let mut b = ctor();
            for refi in 0..12u64 {
                for slot in 0..73u32 {
                    assert_eq!(
                        a.next_act(refi, slot),
                        b.next_act(refi, slot),
                        "{name} diverged at ({refi}, {slot})"
                    );
                }
            }
        }
    }
}
