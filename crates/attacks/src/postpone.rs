//! The deterministic refresh-postponement attack (paper §VI-B).

use crate::{AccessPattern, ROW_STRIDE};
use mint_dram::RowId;

/// The §VI-B attack on low-cost trackers under maximum refresh
/// postponement.
///
/// With four REFs postponed, up to `5 × MaxACT = 365` activations separate
/// consecutive refresh opportunities, but a REF-synchronised tracker only
/// "sees" the first `MaxACT` of them (MINT's CAN saturates; PARFM's buffer
/// fills). The attack exploits this: in each 5-tREFI super-window it spends
/// the first `MaxACT` slots on decoy rows — absorbing whatever the tracker
/// will mitigate — and hammers the real attack row for the remaining
/// `4 × MaxACT` slots, which are completely invisible.
///
/// Per tREFW that is `8192/5 × 292 ≈ 478K` deterministic, unmitigated
/// activations (the paper's headline 478K). The `Dmq` wrapper in
/// `mint-core` defeats it by rolling the tracker's window every `MaxACT`
/// activations regardless of REF arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostponementDecoy {
    attack_row: RowId,
    decoy_base: RowId,
    max_act: u32,
    batch: u32,
}

impl PostponementDecoy {
    /// Attacks `attack_row`'s victims; decoys start at `decoy_base`.
    /// `max_act` is the tracker-visible window (73); `batch` the REF batch
    /// size under postponement (5 = 1 + 4 postponed).
    ///
    /// # Panics
    ///
    /// Panics if `max_act == 0` or `batch < 2` (no postponement to exploit).
    #[must_use]
    pub fn new(attack_row: RowId, decoy_base: RowId, max_act: u32, batch: u32) -> Self {
        assert!(max_act > 0, "window must have at least one slot");
        assert!(batch >= 2, "attack requires at least one postponed REF");
        Self {
            attack_row,
            decoy_base,
            max_act,
            batch,
        }
    }

    /// The hammered row.
    #[must_use]
    pub fn attack_row(&self) -> RowId {
        self.attack_row
    }

    /// Invisible (unmitigated) activations per tREFW of `refw_refis` tREFIs.
    #[must_use]
    pub fn invisible_acts_per_refw(&self, refw_refis: u32) -> u64 {
        let supers = u64::from(refw_refis / self.batch);
        supers * u64::from((self.batch - 1) * self.max_act)
    }
}

impl AccessPattern for PostponementDecoy {
    fn next_act(&mut self, refi: u64, slot: u32) -> Option<RowId> {
        let phase = refi % u64::from(self.batch);
        if phase == 0 {
            // Visible window: decoys (distinct rows so no decoy accumulates).
            Some(RowId(self.decoy_base.0 + (slot % 64) * ROW_STRIDE))
        } else {
            // Invisible tail of the super-window: hammer the target.
            Some(self.attack_row)
        }
    }

    fn name(&self) -> &'static str {
        "postponement-decoy"
    }

    fn target_victims(&self) -> Vec<RowId> {
        self.attack_row.neighbours(1).collect()
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoys_then_attack() {
        let mut a = PostponementDecoy::new(RowId(666), RowId(5000), 73, 5);
        // tREFI 0: decoys only.
        for slot in 0..73 {
            let r = a.next_act(0, slot).unwrap();
            assert_ne!(r, RowId(666), "no attack ACT in the visible window");
        }
        // tREFI 1..4: attack row only.
        for refi in 1..5u64 {
            for slot in 0..73 {
                assert_eq!(a.next_act(refi, slot), Some(RowId(666)));
            }
        }
        // tREFI 5 starts the next super-window: decoys again.
        assert_ne!(a.next_act(5, 0), Some(RowId(666)));
    }

    #[test]
    fn headline_478k() {
        let a = PostponementDecoy::new(RowId(666), RowId(5000), 73, 5);
        // 8192/5 = 1638 super-windows × 292 invisible ACTs = 478 296.
        assert_eq!(a.invisible_acts_per_refw(8192), 478_296);
    }

    #[test]
    fn victims_flank_attack_row() {
        let a = PostponementDecoy::new(RowId(666), RowId(5000), 73, 5);
        assert_eq!(a.target_victims(), vec![RowId(665), RowId(667)]);
    }

    #[test]
    #[should_panic(expected = "postponed REF")]
    fn batch_of_one_rejected() {
        let _ = PostponementDecoy::new(RowId(1), RowId(2), 73, 1);
    }
}
