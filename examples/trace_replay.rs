//! Replay the checked-in sample trace through the command-level channel
//! under both schedulers and a pair of mitigation schemes.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! # or with your own trace (format: `<gap> <R|W> <addr>` per line):
//! cargo run --release --example trace_replay -- path/to/my.trace
//! ```
//!
//! The trace format is documented in the README and in
//! [`mint_rh::memsys::parse_trace`]; `examples/traces/sample100.trace` is a
//! 100-request demonstration covering a streaming phase (row-hit heavy), a
//! bank ping-pong phase and a two-row hammer tail.

use mint_rh::memsys::{MitigationScheme, SchedulePolicy, Sim, SystemConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/traces/sample100.trace".to_owned());
    let entries = mint_rh::memsys::read_trace_file(&path)
        .unwrap_or_else(|e| panic!("cannot load trace {path}: {e}"));
    let cfg = SystemConfig::table6();
    println!(
        "replaying {} requests from {path} on {} cores ({} banks, {} groups)\n",
        entries.len(),
        cfg.cores,
        cfg.banks,
        cfg.bank_groups
    );

    println!(
        "{:<10} {:<14} {:>12} {:>10} {:>10} {:>12}",
        "scheduler", "scheme", "duration_ns", "row hits", "acts", "mitig acts"
    );
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::frfcfs()] {
        for scheme in [MitigationScheme::Baseline, MitigationScheme::Mint] {
            let perf = Sim::new(cfg)
                .scheme(scheme)
                .policy(policy)
                .trace(&entries)
                .seed(26)
                .run()
                .perf;
            println!(
                "{:<10} {:<14} {:>12} {:>10} {:>10} {:>12}",
                policy.label(),
                scheme.label(),
                perf.duration_ps / 1000,
                perf.result.row_hits,
                perf.result.demand_acts,
                perf.result.mitigative_acts,
            );
        }
    }
    println!("\n(identical inputs replay bit-identically; MINT rides REF time, so");
    println!(" its duration matches Baseline under either scheduler)");
}
