//! Mount one worst-case attack on the command-level channel and print the
//! ground-truth oracle's verdict, plus an attacker+victim co-run (the
//! full zoo sweep is `cargo run --release -p mint-bench --bin
//! figx_redteam`).
//!
//! ```bash
//! cargo run --release --example redteam_attack
//! ```

use mint_rh::attacks::{Pattern2, PatternSpec};
use mint_rh::dram::RowId;
use mint_rh::memsys::MitigationScheme;
use mint_rh::redteam::{run_attack, run_corun, RedteamConfig};

fn main() {
    let rc = RedteamConfig {
        attack_refis: 1024,
        ..RedteamConfig::default_sweep()
    };
    let pattern = PatternSpec::new("pattern-2", || Box::new(Pattern2::new(RowId(4000), 73, 73)));
    let trh = 1400;

    println!(
        "pattern-2 (k = 73) on bank {} for 1024 tREFI:",
        rc.target_bank
    );
    for scheme in [
        MitigationScheme::Baseline,
        MitigationScheme::Mint,
        MitigationScheme::Prct,
    ] {
        let (summary, run) = run_attack(&rc, scheme, &pattern, 1);
        let v = summary.verdict(trh);
        println!(
            "  {:<10} max hammers {:>5} (row {:>6})  margin@{trh} {:>5}  {}  \
             [{} ACTs, {} victim refreshes, {:.2} ms]",
            scheme.label(),
            v.max_hammers,
            v.hottest_row,
            v.margin_acts,
            if v.escaped { "ESCAPE" } else { "held" },
            v.demand_acts,
            v.victim_refreshes,
            run.perf.duration_ps as f64 / 1e9,
        );
    }

    println!("\nattacker on core 0 + 3 benign mcf cores:");
    let (_, base) = run_corun(&rc, MitigationScheme::Baseline, &pattern, 2);
    for scheme in [
        MitigationScheme::Mint,
        MitigationScheme::McPara { p: 1.0 / 40.0 },
    ] {
        let (_, run) = run_corun(&rc, scheme, &pattern, 2);
        let benign = |r: &mint_rh::memsys::RunReport| {
            r.cores.iter().skip(1).map(|c| c.finish_ps).max().unwrap()
        };
        println!(
            "  {:<14} benign cores finish at {:.3} ms ({:.4}x vs baseline)",
            scheme.label(),
            benign(&run) as f64 / 1e9,
            benign(&run) as f64 / benign(&base) as f64,
        );
    }
}
