//! Refresh postponement and the Delayed Mitigation Queue (paper §VI).
//!
//! ```bash
//! cargo run --release --example postponement_dmq
//! ```
//!
//! Demonstrates the paper's §VI-B headline end to end:
//!
//! 1. Under DDR5's maximum refresh postponement (4 postponed REFs), the
//!    deterministic decoy attack performs ≈478K activations per tREFW on a
//!    row that bare MINT *never sees* — a total collapse.
//! 2. Wrapping the same tracker in the 4-entry DMQ (15 bytes total)
//!    restores the bound to the low thousands.
//! 3. The adaptive attack of Appendix B buys back only ≈365 activations.

use mint_rh::attacks::{AccessPattern, AdaptiveAttack, PostponementDecoy};
use mint_rh::core::{Dmq, InDramTracker, Mint, MintConfig};
use mint_rh::dram::{RefreshPolicy, RowId};
use mint_rh::rng::Xoshiro256StarStar;
use mint_rh::sim::{Engine, SimConfig};

fn run(tracker: &mut dyn InDramTracker, pattern: &mut dyn AccessPattern, seed: u64) -> u32 {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let cfg = SimConfig::small().with_policy(RefreshPolicy::ddr5_max_postpone());
    Engine::new(cfg).run(tracker, pattern, &mut rng).max_hammers
}

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);
    let attack_row = RowId(10_000);

    println!("DDR5 refresh postponement: 4 REFs postponed, batches of 5,");
    println!("up to 5 x 73 = 365 activations between refresh opportunities.\n");

    // 1. Bare MINT vs the decoy attack: catastrophic.
    let mut bare = Mint::new(MintConfig::ddr5_default(), &mut rng);
    let mut decoy = PostponementDecoy::new(attack_row, RowId(50_000), 73, 5);
    let unprotected = run(&mut bare, &mut decoy, 1);
    println!(
        "bare MINT  vs decoy attack : max unmitigated hammers = {unprotected:>7}  \
         (paper: ~478K deterministic)"
    );

    // 2. MINT+DMQ vs the same attack: bounded.
    let inner = Mint::new(MintConfig::ddr5_default(), &mut rng);
    let mut dmq = Dmq::new(inner, 73);
    let mut decoy = PostponementDecoy::new(attack_row, RowId(50_000), 73, 5);
    let protected = run(&mut dmq, &mut decoy, 2);
    println!(
        "MINT+DMQ   vs decoy attack : max unmitigated hammers = {protected:>7}  \
         (bounded by window+flood)"
    );

    // 3. MINT+DMQ vs the adaptive (morphing) attack of Appendix B.
    let inner = Mint::new(MintConfig::ddr5_default(), &mut rng);
    let mut dmq = Dmq::new(inner, 73);
    let mut ada = AdaptiveAttack::paper_default(RowId(10_000), 1400);
    let adaptive = run(&mut dmq, &mut ada, 3);
    println!(
        "MINT+DMQ   vs ADA (MP=1400): max unmitigated hammers = {adaptive:>7}  \
         (morph buys ≤365 extra)"
    );

    let improvement = f64::from(unprotected) / f64::from(protected.max(1));
    println!(
        "\nDMQ reduces the attacker's best result by {improvement:.0}x, at a \
         cost of 9.5 bytes per bank."
    );
    println!(
        "Analytical MinTRH-D (mint-analysis): 1400 timely, 1404 DMQ-simple, \
         ~1482 under ADA (paper Table IV)."
    );
    assert!(unprotected > 100 * protected);
}
