//! Tolerating Row-Press with ImPress-style equivalent activations
//! (paper Appendix C).
//!
//! ```bash
//! cargo run --release --example rowpress_impress
//! ```
//!
//! Row-Press keeps a row *open* for a long time instead of hammering it
//! rapidly; charge leaks as if many activations had occurred. Plain MINT
//! counts such an access as one activation (CAN += 1) and under-protects;
//! [`RowPressMint`] widens CAN to fixed point and charges each access its
//! ImPress equivalent-activation count `EACT = (tON + tPRE)/tRC`, making a
//! long-open row proportionally more likely to be selected for mitigation.

use mint_rh::core::{eact_fixed_point, InDramTracker, MintConfig, RowPressMint, EACT_FRAC_BITS};
use mint_rh::dram::RowId;
use mint_rh::rng::Xoshiro256StarStar;

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let (t_rc, t_pre) = (48.0, 16.0);

    println!("ImPress equivalent activations (EACT = (tON + tPRE)/tRC):");
    for (desc, t_on) in [
        ("closed-page ACT (tON = tRAS = 32 ns)", 32.0),
        ("row held open 1 us", 1_000.0),
        ("row held open one tREFI (3.9 us)", 3_900.0),
        ("row held open 5 tREFI (Row-Press max)", 5.0 * 3_900.0),
    ] {
        let eact = eact_fixed_point(t_on, t_pre, t_rc);
        println!(
            "  {desc:<42} -> EACT = {:>8.2}",
            eact as f64 / f64::from(1u32 << EACT_FRAC_BITS)
        );
    }

    // A Row-Press attacker holds the aggressor open for one tREFI per
    // "activation": only ~2 accesses fit per interval, but each leaks like
    // ~82 activations. RowPressMint selects it with probability ~82/73 → 1.
    let cfg = MintConfig::ddr5_default().without_transitive();
    let mut tracker = RowPressMint::new(cfg, t_rc, t_pre, &mut rng);
    let trials = 10_000;
    let mut mitigated = 0;
    for _ in 0..trials {
        tracker.on_activation_open(RowId(4096), 3_900.0, &mut rng);
        if tracker.on_refresh(&mut rng).mitigates(RowId(4096)) {
            mitigated += 1;
        }
    }
    println!(
        "\nRow-Press aggressor (1 open-row access/tREFI): mitigated in \
         {:.1}% of windows",
        100.0 * f64::from(mitigated) / f64::from(trials)
    );
    println!(
        "A plain activation-counting tracker would select it with only \
         1/73 = 1.4% probability."
    );
    println!(
        "\nStorage cost: {} bits (vs 32 for plain MINT) — the paper's \
         15 -> 17 bytes/bank with DMQ.",
        tracker.storage_bits()
    );
    assert!(mitigated > trials * 9 / 10);
}
