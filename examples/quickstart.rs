//! Quickstart: MINT and the unified `Sim` run surface in five minutes.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's core mechanism — the future-centric SAN draw
//! and guaranteed selection against classic attacks — then runs the
//! tracker end-to-end on the command-level DDR5 channel through the
//! `Sim` builder, and shows the same scenario written as declarative
//! `ScenarioSpec` data.

use mint_rh::analysis::patterns::pattern2_min_trh;
use mint_rh::analysis::{MinTrhSolver, TargetMttf};
use mint_rh::core::{InDramTracker, Mint, MintConfig};
use mint_rh::dram::RowId;
use mint_rh::memsys::{workload_by_name, MitigationScheme, ScenarioSpec, Sim};
use mint_rh::rng::Xoshiro256StarStar;

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(2024);

    // 1. Build MINT: three registers, four bytes of SRAM (§V-B, §VIII-C).
    let mut mint = Mint::new(MintConfig::ddr5_default(), &mut rng);
    println!(
        "MINT tracker: {} entry, {} bits of SRAM",
        mint.entries(),
        mint.storage_bits()
    );

    // 2. A classic single-sided attack fills every slot of the tREFI —
    //    and is therefore *guaranteed* to be selected (§V-C).
    let aggressor = RowId(0x4242);
    for _ in 0..73 {
        mint.on_activation(aggressor, &mut rng);
    }
    let decision = mint.on_refresh(&mut rng);
    println!("Single-sided attack on {aggressor} → decision: {decision:?}");

    // 3. The headline figure of merit: the minimum Rowhammer threshold MINT
    //    tolerates at a 10,000-year per-bank MTTF (§IV-C, §V-E).
    let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
    let min_trh = pattern2_min_trh(&solver, 73, 73, 74);
    println!(
        "MinTRH against the worst-case pattern: {min_trh} ({} double-sided)",
        min_trh / 2
    );
    println!("Paper reports: 2800 (1400 double-sided) — §V-E/§V-F.\n");

    // 4. The whole memory system behind one builder: every scenario is a
    //    `Sim` — scheme × frontend × mapping × scheduler × seed, with
    //    production defaults for everything you don't set. A `RunReport`
    //    comes back in one shape: aggregate perf, per-core outcomes,
    //    energy, and (opt-in) the executed command events.
    let lbm = workload_by_name("lbm").expect("lbm in the rate suite");
    let base = Sim::ddr5().workload(&[lbm; 4], 20_000).seed(7).run();
    let mint_run = Sim::ddr5()
        .scheme(MitigationScheme::Mint)
        .workload(&[lbm; 4], 20_000)
        .seed(7)
        .run();
    let normalized = mint_run.perf.normalize(&base.perf);
    println!("lbm rate, 4 cores, 20K misses/core through the DDR5 channel:");
    println!(
        "  Baseline: {:.3} ms, row-hit rate {:.3}, {:.1} mJ",
        base.perf.duration_ps as f64 / 1e9,
        base.perf.result.row_hit_rate(),
        base.energy.total_j() * 1e3,
    );
    println!(
        "  MINT:     {:.3} ms, {} mitigative ACTs, normalized perf {:.4} (paper: 1.000)",
        mint_run.perf.duration_ps as f64 / 1e9,
        mint_run.perf.result.mitigative_acts,
        normalized.normalized,
    );

    // 5. The same cell as declarative data: `ScenarioSpec` text
    //    deserializes into the builder (this is what the `run_scenario`
    //    binary and the bench grids feed on).
    let spec = ScenarioSpec::parse(
        "scheme = MINT\n\
         workload = lbm\n\
         requests = 20000\n\
         seed = 7\n",
    )
    .expect("valid scenario");
    let from_spec = spec.run().expect("scenario runs");
    assert_eq!(
        from_spec.perf, mint_run.perf,
        "the declarative cell is the same run, bit for bit"
    );
    println!("\nScenarioSpec round-trip:\n{}", spec.to_text());
    println!("(the spec-driven run is bit-identical to the builder run)");
}
