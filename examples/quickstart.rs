//! Quickstart: the MINT tracker in five minutes.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's core mechanism: the future-centric SAN draw,
//! guaranteed selection against classic attacks, the transitive slot, and
//! the MinTRH figure of merit.

use mint_rh::analysis::patterns::pattern2_min_trh;
use mint_rh::analysis::{MinTrhSolver, TargetMttf};
use mint_rh::core::{InDramTracker, Mint, MintConfig};
use mint_rh::dram::RowId;
use mint_rh::rng::{Rng64, Xoshiro256StarStar};

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(2024);

    // 1. Build MINT: three registers, four bytes of SRAM (§V-B, §VIII-C).
    let mut mint = Mint::new(MintConfig::ddr5_default(), &mut rng);
    println!(
        "MINT tracker: {} entry, {} bits of SRAM",
        mint.entries(),
        mint.storage_bits()
    );
    println!(
        "This window's SAN (selected activation number): {}",
        mint.san()
    );

    // 2. A classic single-sided attack fills every slot of the tREFI —
    //    and is therefore *guaranteed* to be selected (§V-C).
    let aggressor = RowId(0x4242);
    for _ in 0..73 {
        mint.on_activation(aggressor, &mut rng);
    }
    let decision = mint.on_refresh(&mut rng);
    println!("\nSingle-sided attack on {aggressor} → decision: {decision:?}");

    // 3. Selection probability is *uniform* over positions — the property
    //    InDRAM-PARA lacks (§III). Hammer position 1 only and measure.
    let trials = 100_000;
    let mut hits = 0;
    for _ in 0..trials {
        mint.on_activation(aggressor, &mut rng); // position 1
        for d in 1..73 {
            mint.on_activation(RowId(90_000 + d), &mut rng); // decoys
        }
        if mint.on_refresh(&mut rng).mitigates(aggressor) {
            hits += 1;
        }
    }
    println!(
        "\nPosition-1 mitigation rate: {:.5} (theory 1/74 = {:.5})",
        f64::from(hits) / f64::from(trials),
        1.0 / 74.0
    );

    // 4. The headline figure of merit: the minimum Rowhammer threshold MINT
    //    tolerates at a 10,000-year per-bank MTTF (§IV-C, §V-E).
    let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);
    let min_trh = pattern2_min_trh(&solver, 73, 73, 74);
    println!(
        "\nMinTRH against the worst-case pattern: {} ({} double-sided)",
        min_trh,
        min_trh / 2
    );
    println!("Paper reports: 2800 (1400 double-sided) — §V-E/§V-F.");

    // 5. Seed-reproducibility: every experiment in this repository replays
    //    from explicit seeds.
    let a = Xoshiro256StarStar::seed_from_u64(7).next_u64();
    let b = Xoshiro256StarStar::seed_from_u64(7).next_u64();
    assert_eq!(a, b);
    println!("\nDeterministic RNG substrate verified (seed 7 → {a:#018x}).");
}
