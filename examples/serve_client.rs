//! A minimal client for the scenario service: starts `mint-serve` on a
//! unix socket in-process, submits the two demo cells from
//! `examples/scenarios/service_demo.jsonl`, and checks each streamed
//! report byte-for-byte against the batch runner (`ScenarioSpec::run`).
//!
//! ```bash
//! cargo run --example serve_client
//! ```
//!
//! Against a real resident service the client side is the same — only
//! the process boundary changes:
//!
//! ```bash
//! cargo run --release -p mint-bench --bin run_scenario -- --serve --socket /tmp/mint.sock &
//! nc -U /tmp/mint.sock < examples/scenarios/service_demo.jsonl
//! ```

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use mint_memsys::{parse_any, Scenario};
use mint_serve::{wire, Service};

const DEMO: &str = include_str!("scenarios/service_demo.jsonl");

fn main() {
    // What the service *should* stream back: each submitted cell run
    // through the batch path and rendered by the same wire formatter.
    let mut expected = Vec::new();
    for line in DEMO.lines().filter(|l| !l.trim().is_empty()) {
        if let wire::Envelope::Submit { id, spec, .. } =
            wire::Envelope::parse_line(line).expect("demo envelope")
        {
            let Scenario::Cell(cell) = parse_any(&spec).expect("demo spec") else {
                panic!("the demo submits cells");
            };
            let report = cell.run().expect("batch run");
            expected.push(wire::ok_cell_line(id, &cell.scheme.label(), &report));
        }
    }

    let socket = std::env::temp_dir().join(format!("mint-serve-demo-{}.sock", std::process::id()));
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || Service::new().serve_unix(&socket))
    };
    let stream = connect_with_retry(&socket);
    let mut writer = stream.try_clone().expect("clone stream");
    writer.write_all(DEMO.as_bytes()).expect("send demo jobs");
    writer.flush().expect("flush");

    let mut lines = BufReader::new(stream).lines();
    for want in &expected {
        let got = lines.next().expect("a response line").expect("read line");
        assert_eq!(&got, want, "streamed report differs from the batch run");
        println!("{got}");
    }
    assert!(
        lines.next().is_none(),
        "nothing follows the drain (shutdown closes the stream)"
    );
    server.join().expect("server thread").expect("serve_unix");
    println!(
        "serve_client: {} job(s) matched the batch runner byte-for-byte",
        expected.len()
    );
}

fn connect_with_retry(socket: &std::path::Path) -> UnixStream {
    for _ in 0..500 {
        if let Ok(stream) = UnixStream::connect(socket) {
            return stream;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("service socket {} never came up", socket.display());
}
