//! How fast does the simulator itself run? Times one tracker-zoo
//! throughput cell — MINT on a 4-core mcf rate stream under FR-FCFS —
//! under both the incremental planner (the default) and the retained
//! scratch reference, and prints host-side ns per scheduling decision,
//! requests/sec and DRAM commands/sec.
//!
//! ```bash
//! cargo run --release --example throughput
//! ```
//!
//! The full scheme × policy × queue-depth sweep (and the tracked
//! `BENCH_throughput.json` trajectory) lives in the `figx_throughput`
//! binary of `mint-bench`; this example is the one-cell taste of it.

use mint_bench::throughput::{measure_cell, ThroughputCell, DEFAULT_REPS};
use mint_memsys::{workload_by_name, MitigationScheme, SchedulePolicy};

fn main() {
    let cell = ThroughputCell {
        label: "zoo/MINT".into(),
        scheme: MitigationScheme::Mint,
        policy: SchedulePolicy::frfcfs(),
        cores: 4,
        channels: 1,
        requests_per_core: 40_000,
        spec: workload_by_name("mcf").expect("mcf in the suite"),
    };
    let r = measure_cell(&cell, DEFAULT_REPS);
    println!(
        "{} ({} on {} cores, {} requests, queue depth {}):",
        r.label, r.policy, r.cores, r.requests, r.queue_depth
    );
    println!(
        "  incremental planner: {:7.1} ns/decision  ({:.2} Mreq/s, {:.2} Mcmd/s)",
        r.ns_per_decision,
        r.requests_per_sec / 1e6,
        r.commands_per_sec / 1e6
    );
    println!(
        "  scratch reference:   {:7.1} ns/decision  ({:.2}x slower)",
        r.reference_ns_per_decision,
        r.planner_speedup()
    );
}
