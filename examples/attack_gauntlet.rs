//! The attack gauntlet: every pattern in the paper against every tracker.
//!
//! ```bash
//! cargo run --release --example attack_gauntlet
//! ```
//!
//! Prints a (tracker × attack) matrix of the *maximum unmitigated hammer
//! count* any row reached in one tREFW — the quantity a Rowhammer threshold
//! is compared against. Reproduces the qualitative claims of Table III:
//! vendor-TRR breaks under many-sided patterns, PARFM and transitive-less
//! MINT break under Half-Double, full MINT holds everywhere.

use mint_rh::attacks::{
    AccessPattern, Blacksmith, BlacksmithConfig, DoubleSided, HalfDouble, ManySided, Pattern2,
    SingleSided,
};
use mint_rh::core::{InDramTracker, Mint, MintConfig};
use mint_rh::dram::RowId;
use mint_rh::rng::Xoshiro256StarStar;
use mint_rh::sim::{Engine, SimConfig};
use mint_rh::trackers::{InDramPara, Parfm, Prct, SimpleTrr};

type MakeAttack = Box<dyn Fn() -> Box<dyn AccessPattern>>;
type MakeTracker = Box<dyn Fn(&mut Xoshiro256StarStar) -> Box<dyn InDramTracker>>;

fn attacks() -> Vec<(&'static str, MakeAttack)> {
    vec![
        (
            "single-sided",
            Box::new(|| Box::new(SingleSided::new(RowId(10_000)))),
        ),
        (
            "double-sided",
            Box::new(|| Box::new(DoubleSided::new(RowId(10_000)))),
        ),
        (
            "many-sided-40",
            Box::new(|| Box::new(ManySided::new(RowId(10_000), 40))),
        ),
        (
            "blacksmith",
            Box::new(|| Box::new(Blacksmith::new(BlacksmithConfig::default()))),
        ),
        (
            "half-double",
            Box::new(|| Box::new(HalfDouble::new(RowId(10_000)))),
        ),
        (
            "pattern-2 (k=73)",
            Box::new(|| Box::new(Pattern2::new(RowId(10_000), 73, 73))),
        ),
    ]
}

fn run(
    tracker: &mut dyn InDramTracker,
    make: &dyn Fn() -> Box<dyn AccessPattern>,
    seed: u64,
) -> u32 {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut pattern = make();
    let mut engine = Engine::new(SimConfig::small());
    engine.run(tracker, pattern.as_mut(), &mut rng).max_hammers
}

fn main() {
    let attack_list = attacks();
    print!("{:<24}", "tracker \\ attack");
    for (name, _) in &attack_list {
        print!("{name:>18}");
    }
    println!();

    let trackers: Vec<(&str, MakeTracker)> = vec![
        (
            "MINT",
            Box::new(|r: &mut Xoshiro256StarStar| {
                Box::new(Mint::new(MintConfig::ddr5_default(), r)) as Box<dyn InDramTracker>
            }),
        ),
        (
            "MINT (no transitive)",
            Box::new(|r: &mut Xoshiro256StarStar| {
                Box::new(Mint::new(
                    MintConfig::ddr5_default().without_transitive(),
                    r,
                ))
            }),
        ),
        (
            "InDRAM-PARA",
            Box::new(|_r| Box::new(InDramPara::new(1.0 / 73.0))),
        ),
        ("PARFM", Box::new(|_r| Box::new(Parfm::new(73)))),
        ("PRCT", Box::new(|_r| Box::new(Prct::new(64 * 1024)))),
        ("TRR-16", Box::new(|_r| Box::new(SimpleTrr::new(16)))),
    ];

    for (tname, make_tracker) in &trackers {
        print!("{tname:<24}");
        for (i, (_, make_attack)) in attack_list.iter().enumerate() {
            let mut rng = Xoshiro256StarStar::seed_from_u64(900 + i as u64);
            let mut tracker = make_tracker(&mut rng);
            let max = run(tracker.as_mut(), make_attack.as_ref(), 900 + i as u64);
            print!("{max:>18}");
        }
        println!();
    }

    println!(
        "\nReading: each cell is the max unmitigated hammers in one tREFW \
         (32 ms).\nMINT stays bounded everywhere; removing the transitive \
         slot loses to half-double;\nTRR loses to many-sided/blacksmith \
         (TRRespass-style); PARFM loses to half-double (Table III)."
    );
}
