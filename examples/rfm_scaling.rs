//! Scaling MINT to low thresholds with RFM (paper §VII + Fig 16).
//!
//! ```bash
//! cargo run --release --example rfm_scaling
//! ```
//!
//! Computes the Table V security scaling analytically and then runs the
//! memory-system simulator to show what each rate costs in performance —
//! the paper's central trade-off: 4x the mitigation rate buys a 4x lower
//! tolerated threshold for ~1.6% slowdown.

use mint_rh::analysis::ada::AdaConfig;
use mint_rh::analysis::{MinTrhSolver, TargetMttf};
use mint_rh::memsys::{run_workload, spec_rate_workloads, MitigationScheme, SystemConfig};

fn main() {
    let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);

    println!("Security scaling (MinTRH-D, with DMQ, adaptive attacks):");
    let configs = [
        ("MINT 0.5x", AdaConfig::half_rate()),
        ("MINT 1x  ", AdaConfig::mint_default()),
        ("MINT+RFM32", AdaConfig::rfm(32)),
        ("MINT+RFM16", AdaConfig::rfm(16)),
    ];
    for (name, cfg) in configs {
        println!(
            "  {name}: window {:>3} ACTs -> MinTRH-D {:>5}",
            cfg.window_acts,
            cfg.ada_min_trh_d(&solver)
        );
    }
    println!("  (paper Table V: 2.70K / 1.48K / 689 / 356)\n");

    println!("Performance cost (4-core mcf rate, 30K misses/core):");
    let sys = SystemConfig::table6();
    let mcf = spec_rate_workloads()
        .into_iter()
        .find(|w| w.name == "mcf")
        .expect("mcf in the suite");
    let specs = [mcf; 4];
    let base = run_workload(&sys, MitigationScheme::Baseline, &specs, 30_000, 42);
    for scheme in [
        MitigationScheme::Mint,
        MitigationScheme::MintRfm { rfm_th: 32 },
        MitigationScheme::MintRfm { rfm_th: 16 },
    ] {
        let r = run_workload(&sys, scheme, &specs, 30_000, 42).normalize(&base);
        println!(
            "  {:<12} normalized perf {:.4}  (RFMs: {:>6}, mitigative ACTs: {:>6})",
            scheme.label(),
            r.normalized,
            r.result.rfm_commands,
            r.result.mitigative_acts
        );
    }
    println!("  (paper Fig 16: MINT 0%, RFM32 ~0.2%, RFM16 ~1.6% slowdown)");
}
