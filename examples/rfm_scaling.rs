//! Scaling MINT to low thresholds with RFM (paper §VII + Fig 16).
//!
//! ```bash
//! cargo run --release --example rfm_scaling
//! ```
//!
//! Computes the Table V security scaling analytically and then runs the
//! memory-system simulator to show what each rate costs in performance —
//! the paper's central trade-off: 4x the mitigation rate buys a 4x lower
//! tolerated threshold for ~1.6% slowdown.

use mint_rh::analysis::ada::AdaConfig;
use mint_rh::analysis::{MinTrhSolver, TargetMttf};
use mint_rh::memsys::{workload_by_name, MitigationScheme, Sim};

fn main() {
    let solver = MinTrhSolver::new(TargetMttf::paper_default(), 0.032);

    println!("Security scaling (MinTRH-D, with DMQ, adaptive attacks):");
    let configs = [
        ("MINT 0.5x", AdaConfig::half_rate()),
        ("MINT 1x  ", AdaConfig::mint_default()),
        ("MINT+RFM32", AdaConfig::rfm(32)),
        ("MINT+RFM16", AdaConfig::rfm(16)),
    ];
    for (name, cfg) in configs {
        println!(
            "  {name}: window {:>3} ACTs -> MinTRH-D {:>5}",
            cfg.window_acts,
            cfg.ada_min_trh_d(&solver)
        );
    }
    println!("  (paper Table V: 2.70K / 1.48K / 689 / 356)\n");

    println!("Performance cost (4-core mcf rate, 30K misses/core):");
    let mcf = workload_by_name("mcf").expect("mcf in the suite");
    let specs = [mcf; 4];
    let run = |scheme| {
        Sim::ddr5()
            .scheme(scheme)
            .workload(&specs, 30_000)
            .seed(42)
            .run()
            .perf
    };
    let base = run(MitigationScheme::Baseline);
    for scheme in [
        MitigationScheme::Mint,
        MitigationScheme::MintRfm { rfm_th: 32 },
        MitigationScheme::MintRfm { rfm_th: 16 },
    ] {
        let r = run(scheme).normalize(&base);
        println!(
            "  {:<12} normalized perf {:.4}  (RFMs: {:>6}, mitigative ACTs: {:>6})",
            scheme.label(),
            r.normalized,
            r.result.rfm_commands,
            r.result.mitigative_acts
        );
    }
    println!("  (paper Fig 16: MINT 0%, RFM32 ~0.2%, RFM16 ~1.6% slowdown)");
}
