//! Run one workload under every mitigation scheme in the zoo and print a
//! mini performance/storage comparison (the full Table-IX-style sweep is
//! `cargo run --release -p mint-bench --bin figx_tracker_zoo`).
//!
//! ```bash
//! cargo run --release --example tracker_zoo
//! ```

use mint_rh::memsys::{
    workload_by_name, MitigationBackend, MitigationScheme, ScenarioGrid, SystemConfig,
};
use mint_rh::rng::Xoshiro256StarStar;

fn main() {
    let cfg = SystemConfig::table6();
    let schemes = MitigationScheme::zoo();
    let mcf = workload_by_name("mcf").expect("mcf is in the rate suite");
    let grid = ScenarioGrid::new(cfg)
        .schemes(&schemes)
        .workloads(&[[mcf; 4]])
        .requests_per_core(20_000)
        .seeds(&[7])
        .run();

    println!("mcf_r under the full mitigation zoo (normalized to Baseline):");
    println!(
        "{:<14} {:>10} {:>14} {:>10} {:>12}",
        "scheme", "perf", "mitig ACTs", "RFM/DRFM", "bits/bank"
    );
    let mut probe = Xoshiro256StarStar::seed_from_u64(0);
    for (cell, &scheme) in grid[0].iter().zip(&schemes) {
        let bits = MitigationBackend::for_scheme(scheme, &cfg, &mut probe)
            .tracker()
            .map_or(0, |t| t.storage_bits());
        println!(
            "{:<14} {:>10.4} {:>14} {:>10} {:>12}",
            scheme.label(),
            cell.normalized,
            cell.result.mitigative_acts,
            cell.result.rfm_commands + cell.result.drfm_commands,
            bits,
        );
    }
}
